//! Per-block TID-lists and sorted-list intersection.
//!
//! ECUT's insight (paper §3.1.1) rests on two properties of systematic
//! block evolution: **additivity** (the support of an itemset over a window
//! is the sum of its per-block supports) and the **0/1 property** (a BSS
//! selects a block completely or not at all). Together they let each item's
//! TID-list be split into immutable per-block segments, written once when
//! the block arrives and read selectively ever after.
//!
//! TIDs increase in arrival order, so every per-block list is sorted by
//! construction and intersections are sort-merge joins.

use demon_types::{obs, BlockId, Item, Tid, TxBlock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// TID-lists of one block: one sorted list per item, plus optionally
/// materialized 2-itemset lists for ECUT+.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BlockTidLists {
    /// `item_lists[i]` is the sorted list of TIDs of transactions in this
    /// block containing item `i`.
    item_lists: Vec<Vec<Tid>>,
    /// Materialized 2-itemset lists, keyed by the (ordered) item pair.
    pair_lists: BTreeMap<(Item, Item), Vec<Tid>>,
    /// Number of transactions in the block.
    n_transactions: u64,
}

impl BlockTidLists {
    /// Scans `block` once and materializes the TID-list of every item
    /// (paper: "The TID-lists of all items are materialized simultaneously").
    pub fn materialize(block: &TxBlock, n_items: u32) -> Self {
        let mut item_lists = vec![Vec::new(); n_items as usize];
        for tx in block.records() {
            for &item in tx.items() {
                debug_assert!(item.id() < n_items, "item {item} outside universe");
                item_lists[item.index()].push(tx.tid());
            }
        }
        BlockTidLists {
            item_lists,
            pair_lists: BTreeMap::new(),
            n_transactions: block.len() as u64,
        }
    }

    /// Number of transactions in the block.
    pub fn n_transactions(&self) -> u64 {
        self.n_transactions
    }

    /// The TID-list of `item` in this block.
    pub fn item_list(&self, item: Item) -> &[Tid] {
        self.item_lists
            .get(item.index())
            .map_or(&[], |v| v.as_slice())
    }

    /// Support (absolute count) of a single item in this block.
    pub fn item_support(&self, item: Item) -> u64 {
        self.item_list(item).len() as u64
    }

    /// The materialized TID-list of the pair `(a, b)` (ordered `a < b`),
    /// if ECUT+ chose to materialize it for this block.
    pub fn pair_list(&self, a: Item, b: Item) -> Option<&[Tid]> {
        debug_assert!(a < b);
        self.pair_lists.get(&(a, b)).map(|v| v.as_slice())
    }

    /// Materializes the pair `(a, b)` by intersecting the two item lists.
    /// Returns the length of the new list. Idempotent.
    pub fn materialize_pair(&mut self, a: Item, b: Item) -> usize {
        debug_assert!(a < b);
        if let Some(l) = self.pair_lists.get(&(a, b)) {
            return l.len();
        }
        let list = intersect_pair(self.item_list(a), self.item_list(b));
        let len = list.len();
        self.pair_lists.insert((a, b), list);
        len
    }

    /// Stores a pre-computed pair list (ECUT+ budgeted materialization
    /// intersects first to learn the cost, then decides whether to keep).
    pub fn insert_pair(&mut self, a: Item, b: Item, list: Vec<Tid>) {
        debug_assert!(a < b);
        debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "pair list unsorted");
        self.pair_lists.insert((a, b), list);
    }

    /// Iterates over the materialized pairs of this block.
    pub fn materialized_pairs(&self) -> impl Iterator<Item = (Item, Item)> + '_ {
        self.pair_lists.keys().copied()
    }

    /// Total TIDs stored in the per-item lists. One TID models one disk
    /// word, so this doubles as the space occupied by the transactional
    /// representation (paper: the TID-list representation replaces it).
    pub fn item_space(&self) -> u64 {
        self.item_lists.iter().map(|l| l.len() as u64).sum()
    }

    /// Total TIDs stored in materialized pair lists (the *extra* space of
    /// ECUT+, reported in Figure 3).
    pub fn pair_space(&self) -> u64 {
        self.pair_lists.values().map(|l| l.len() as u64).sum()
    }
}

/// The TID-list side of the evolving database: one [`BlockTidLists`]
/// per block, immutable once written.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TidListStore {
    blocks: BTreeMap<BlockId, BlockTidLists>,
    n_items: u32,
}

impl TidListStore {
    /// An empty store over an item universe of size `n_items`.
    pub fn new(n_items: u32) -> Self {
        TidListStore {
            blocks: BTreeMap::new(),
            n_items,
        }
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Materializes and stores the TID-lists of `block`.
    pub fn add_block(&mut self, block: &TxBlock) {
        let lists = BlockTidLists::materialize(block, self.n_items);
        self.blocks.insert(block.id(), lists);
    }

    /// Drops the lists of a retired block.
    pub fn remove_block(&mut self, id: BlockId) -> bool {
        self.blocks.remove(&id).is_some()
    }

    /// The lists of one block.
    pub fn block(&self, id: BlockId) -> Option<&BlockTidLists> {
        self.blocks.get(&id)
    }

    /// Mutable access (ECUT+ pair materialization).
    pub fn block_mut(&mut self, id: BlockId) -> Option<&mut BlockTidLists> {
        self.blocks.get_mut(&id)
    }

    /// Iterates over stored blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BlockTidLists)> {
        self.blocks.iter().map(|(id, b)| (*id, b))
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Which pairwise intersection kernel [`kernel_for`] selected.
///
/// All three kernels compute the identical sorted intersection — the
/// choice is purely a cost decision, so results (and therefore the
/// workspace-wide determinism contract) never depend on it. The decision
/// table, with `s = short.len()`, `l = long.len()`, and `w` the number
/// of 64-bit words spanned by the lists' overlap window:
///
/// | Condition (checked in order) | Kernel | Cost |
/// |---|---|---|
/// | `l / s ≥ GALLOP_RATIO` | [`Gallop`](IntersectKernel::Gallop) | `O(s · log(l/s))` |
/// | `w ≤ (s + l) · BITSET_WORDS_PER_ELEM` | [`Bitset`](IntersectKernel::Bitset) | `O(s + l + w)`, branch-free probes |
/// | otherwise | [`Merge`](IntersectKernel::Merge) | `O(s + l)` |
///
/// Degenerate inputs (an empty list, disjoint TID windows) report
/// [`Merge`](IntersectKernel::Merge): every kernel resolves them in a
/// handful of comparisons, so the label is cosmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntersectKernel {
    /// Naive two-pointer sort-merge join — the baseline the paper's
    /// §3.1.1 describes, best when lists are comparable in length and
    /// their overlap window is sparse.
    Merge,
    /// Galloping (exponential) search of the longer list driven by the
    /// shorter — wins when the lengths are heavily skewed, the common
    /// case when intersecting a rare item with a popular one.
    Gallop,
    /// u64-bitset-chunk probe: the shorter list is scattered into a
    /// bitmap over the overlap window and the longer list probes single
    /// bits — wins when the window is dense, where the merge kernel's
    /// per-element branches mispredict constantly.
    Bitset,
}

/// Length skew (`long / short`) at or above which galloping beats the
/// linear merge. Below it, the gallop's restart-and-binary-search
/// overhead per element exceeds the merge's ~2 comparisons.
pub const GALLOP_RATIO: usize = 16;

/// Maximum bitmap words per input TID for the bitset kernel: chosen
/// when `window_words ≤ (short + long) * BITSET_WORDS_PER_ELEM`. The
/// bitmap's fixed cost is a `memset` of the window (≈8 words/ns) plus
/// one branch-free bit-op per element, while the merge pays ~2
/// mispredicting comparisons per element — so the bitmap wins until the
/// window is roughly an order of magnitude larger than the inputs, and
/// the cap also keeps it inside L2 for typical list lengths. Measured
/// crossover on random lists (100–1000 TIDs): bitset wins up to ~8
/// words/element, loses by ~4× at ~80.
pub const BITSET_WORDS_PER_ELEM: usize = 8;

/// Picks the cheapest pairwise kernel for two sorted TID-lists. Pure:
/// depends only on the list lengths and their first/last TIDs, so the
/// same inputs select the same kernel on every run, thread and shard.
pub fn kernel_for(a: &[Tid], b: &[Tid]) -> IntersectKernel {
    let (s, l) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if s == 0 {
        return IntersectKernel::Merge;
    }
    if l / s >= GALLOP_RATIO {
        return IntersectKernel::Gallop;
    }
    let lo = a[0].0.max(b[0].0);
    let hi = a[a.len() - 1].0.min(b[b.len() - 1].0);
    if lo > hi {
        return IntersectKernel::Merge; // Disjoint windows: trivial either way.
    }
    let words = (hi - lo) / 64 + 1;
    if words <= ((s + l) as u64).saturating_mul(BITSET_WORDS_PER_ELEM as u64) {
        IntersectKernel::Bitset
    } else {
        IntersectKernel::Merge
    }
}

/// Reusable buffers for the intersection kernels and multiway folds.
///
/// # Scratch-buffer reuse contract
///
/// One `IntersectScratch` per worker/shard, reused across every
/// (block, candidate) pair: each call clears the *lengths* it uses but
/// keeps the *capacity*, so steady-state counting performs no
/// allocations. The buffers carry no information between calls — any
/// call sequence yields the same results as fresh buffers (asserted by
/// the tidlist unit tests). Never share one scratch between concurrent
/// workers; the parallel counting layer allocates one per shard.
#[derive(Default)]
pub struct IntersectScratch {
    /// Bitmap over the overlap window (bitset kernel).
    words: Vec<u64>,
    /// Running multiway intersection.
    acc: Vec<Tid>,
    /// Ping-pong twin of `acc`.
    tmp: Vec<Tid>,
}

impl IntersectScratch {
    /// Fresh, empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Anything a kernel can emit matching TIDs into: a result vector, or a
/// bare counter when only the support is needed (the final fold of a
/// candidate count never materializes its TID-list).
trait TidSink {
    fn emit(&mut self, t: Tid);

    /// Conditional emit — the merge kernel's inner loop. The default is
    /// a plain branch; the count-only sink overrides it with a
    /// branch-free add so the whole merge loop compiles to conditional
    /// moves (mispredicted match branches dominate the branchy version).
    #[inline]
    fn emit_if(&mut self, cond: bool, t: Tid) {
        if cond {
            self.emit(t);
        }
    }
}

impl TidSink for Vec<Tid> {
    #[inline]
    fn emit(&mut self, t: Tid) {
        self.push(t);
    }
}

/// Count-only sink: support without materialization.
struct CountSink(u64);

impl TidSink for CountSink {
    #[inline]
    fn emit(&mut self, _t: Tid) {
        self.0 += 1;
    }

    #[inline]
    fn emit_if(&mut self, cond: bool, _t: Tid) {
        self.0 += u64::from(cond);
    }
}

/// Intersects two sorted TID-lists, dispatching between the merge and
/// galloping kernels (see [`kernel_for`]; the bitset kernel needs
/// scratch — use [`intersect_into`] in hot loops).
pub fn intersect_pair(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
    let mut out = Vec::new();
    intersect_pair_into(a, b, &mut out);
    out
}

/// [`intersect_pair`] writing into a caller-provided buffer (cleared
/// first), so non-hot callers can reuse one allocation across calls
/// without carrying an [`IntersectScratch`].
pub fn intersect_pair_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
    out.clear();
    match kernel_for(a, b) {
        IntersectKernel::Gallop => gallop_sink(a, b, out),
        // No scratch available: the merge kernel covers the bitset case
        // correctly (just without the dense-window speedup).
        IntersectKernel::Merge | IntersectKernel::Bitset => merge_sink(a, b, out),
    }
}

/// Intersects two sorted TID-lists into `out` (cleared first) with full
/// kernel dispatch — the counting hot path's entry point. Tallies the
/// chosen kernel in the `intersect.*` observability counters.
pub fn intersect_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>, scratch: &mut IntersectScratch) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    match tallied_kernel(a, b) {
        IntersectKernel::Merge => merge_sink(a, b, out),
        IntersectKernel::Gallop => gallop_sink(a, b, out),
        IntersectKernel::Bitset => bitset_sink(a, b, &mut scratch.words, out),
    }
}

/// The support of `a ∩ b` without materializing the intersection — the
/// fast path for 2-itemset candidates and for the final fold of any
/// multiway intersection. Same kernel dispatch as [`intersect_into`].
pub fn intersect_count(a: &[Tid], b: &[Tid], scratch: &mut IntersectScratch) -> u64 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut sink = CountSink(0);
    match tallied_kernel(a, b) {
        IntersectKernel::Merge => merge_sink(a, b, &mut sink),
        IntersectKernel::Gallop => gallop_sink(a, b, &mut sink),
        IntersectKernel::Bitset => bitset_sink(a, b, &mut scratch.words, &mut sink),
    }
    sink.0
}

/// [`kernel_for`] plus an observability tally of the choice.
fn tallied_kernel(a: &[Tid], b: &[Tid]) -> IntersectKernel {
    let kernel = kernel_for(a, b);
    obs::incr(match kernel {
        IntersectKernel::Merge => obs::Counter::IntersectMerge,
        IntersectKernel::Gallop => obs::Counter::IntersectGallop,
        IntersectKernel::Bitset => obs::Counter::IntersectBitset,
    });
    kernel
}

/// Naive two-pointer sort-merge intersection into `sink` (appends; the
/// public wrappers clear their buffers).
pub fn intersect_merge_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
    out.clear();
    merge_sink(a, b, out);
}

/// Galloping intersection into `out` (cleared first): the shorter list
/// drives, exponentially searching the longer one.
pub fn intersect_gallop_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
    out.clear();
    gallop_sink(a, b, out);
}

/// u64-bitset-chunk intersection into `out` (cleared first): scatters
/// the shorter list into a bitmap over the lists' overlap window held in
/// `scratch`, then probes it with the longer list in order (so the
/// output stays sorted).
pub fn intersect_bitset_into(
    a: &[Tid],
    b: &[Tid],
    out: &mut Vec<Tid>,
    scratch: &mut IntersectScratch,
) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    bitset_sink(a, b, &mut scratch.words, out);
}

fn merge_sink<S: TidSink>(a: &[Tid], b: &[Tid], sink: &mut S) {
    let (mut i, mut j) = (0usize, 0usize);
    // Branch-free advance: both cursors move on a match, exactly one
    // moves otherwise. TID comparisons are data-dependent and therefore
    // unpredictable; conditional moves beat mispredicted branches here.
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        sink.emit_if(x == y, x);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
}

fn gallop_sink<S: TidSink>(a: &[Tid], b: &[Tid], sink: &mut S) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return;
    }
    let mut lo = 0usize;
    for &t in short {
        // Gallop forward in the long list until long[hi] ≥ t (or the end).
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < t {
            lo = hi + 1;
            hi = lo + step;
            step *= 2;
        }
        // long[hi] ≥ t when hi is in range, so include it in the search.
        let hi = (hi + 1).min(long.len());
        match long[lo..hi].binary_search(&t) {
            Ok(pos) => {
                sink.emit(t);
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
        if lo >= long.len() {
            break;
        }
    }
}

/// The sub-slice of `l` whose TIDs fall inside `[lo, hi]`.
fn trim_to_window(l: &[Tid], lo: u64, hi: u64) -> &[Tid] {
    let start = l.partition_point(|t| t.0 < lo);
    let end = l.partition_point(|t| t.0 <= hi);
    &l[start..end]
}

fn bitset_sink<S: TidSink>(a: &[Tid], b: &[Tid], words: &mut Vec<u64>, sink: &mut S) {
    debug_assert!(!a.is_empty() && !b.is_empty());
    // Only the overlap window can hold matches; everything outside is
    // skipped in O(log n) rather than bitmapped.
    let lo = a[0].0.max(b[0].0);
    let hi = a[a.len() - 1].0.min(b[b.len() - 1].0);
    if lo > hi {
        return;
    }
    let a = trim_to_window(a, lo, hi);
    let b = trim_to_window(b, lo, hi);
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return;
    }
    let n_words = usize::try_from((hi - lo) / 64 + 1).expect("window fits in memory");
    words.clear();
    words.resize(n_words, 0);
    for &t in short {
        let off = t.0 - lo;
        words[(off / 64) as usize] |= 1u64 << (off % 64);
    }
    for &t in long {
        let off = t.0 - lo;
        if words[(off / 64) as usize] >> (off % 64) & 1 == 1 {
            sink.emit(t);
        }
    }
}

/// Intersects any number of sorted TID-lists. Lists are processed shortest
/// first, so the running intersection only shrinks.
///
/// Returns the full TID-list of the conjunction; its length is the support.
pub fn intersect_all(lists: &[&[Tid]]) -> Vec<Tid> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        _ => {
            let mut order: Vec<&[Tid]> = lists.to_vec();
            let mut acc = Vec::new();
            let mut tmp = Vec::new();
            intersect_sorted_into(&mut order, &mut acc, &mut tmp);
            acc
        }
    }
}

/// Allocation-free multiway intersection for the counting inner loop:
/// sorts `lists` shortest-first in place and leaves the conjunction's
/// TID-list in `acc`, using `tmp` as the ping-pong buffer. Returns the
/// support (i.e. `acc.len()`).
///
/// `lists` must hold at least two lists; the single- and zero-list cases
/// are the caller's fast paths (no intersection to perform).
pub fn intersect_sorted_into(lists: &mut [&[Tid]], acc: &mut Vec<Tid>, tmp: &mut Vec<Tid>) -> u64 {
    debug_assert!(lists.len() >= 2, "multiway intersection needs ≥ 2 lists");
    // Tie order among equal-length lists cannot affect the (set-valued)
    // intersection, so the unstable sort keeps results deterministic.
    lists.sort_unstable_by_key(|l| l.len());
    intersect_pair_into(lists[0], lists[1], acc);
    for l in &lists[2..] {
        if acc.is_empty() {
            break;
        }
        intersect_pair_into(acc, l, tmp);
        std::mem::swap(acc, tmp);
    }
    acc.len() as u64
}

/// Support of the conjunction of `lists` without materializing the final
/// TID-list — the counting hot path's multiway entry point. Sorts
/// `lists` shortest-first in place (like [`intersect_sorted_into`]),
/// folds all but the longest list through [`intersect_into`], and
/// resolves the last — typically by far the longest — step with the
/// count-only [`intersect_count`], skipping its output writes entirely.
/// For the dominant 2-itemset case no TID is ever written.
pub fn intersect_sorted_count(lists: &mut [&[Tid]], scratch: &mut IntersectScratch) -> u64 {
    match lists.len() {
        0 => 0,
        1 => lists[0].len() as u64,
        _ => {
            // Tie order among equal-length lists cannot affect the
            // (set-valued) intersection, so the unstable sort keeps
            // results deterministic.
            lists.sort_unstable_by_key(|l| l.len());
            let (&longest, rest) = lists.split_last().expect("≥ 2 lists");
            if rest.len() == 1 {
                return intersect_count(rest[0], longest, scratch);
            }
            // Take the ping-pong buffers out so `scratch.words` stays
            // available to the kernels while `acc` is borrowed.
            let mut acc = std::mem::take(&mut scratch.acc);
            let mut tmp = std::mem::take(&mut scratch.tmp);
            intersect_into(rest[0], rest[1], &mut acc, scratch);
            for l in &rest[2..] {
                if acc.is_empty() {
                    break;
                }
                intersect_into(&acc, l, &mut tmp, scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let support = if acc.is_empty() {
                0
            } else {
                intersect_count(&acc, longest, scratch)
            };
            scratch.acc = acc;
            scratch.tmp = tmp;
            support
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::Transaction;

    fn tids(v: &[u64]) -> Vec<Tid> {
        v.iter().copied().map(Tid).collect()
    }

    fn block(id: u64, txs: &[(u64, &[u32])]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .map(|(tid, items)| {
                    Transaction::new(Tid(*tid), items.iter().copied().map(Item).collect())
                })
                .collect(),
        )
    }

    #[test]
    fn intersect_pair_basic() {
        assert_eq!(
            intersect_pair(&tids(&[1, 3, 5, 7]), &tids(&[2, 3, 4, 7, 9])),
            tids(&[3, 7])
        );
        assert_eq!(intersect_pair(&tids(&[]), &tids(&[1])), tids(&[]));
        assert_eq!(intersect_pair(&tids(&[1, 2]), &tids(&[3, 4])), tids(&[]));
        assert_eq!(
            intersect_pair(&tids(&[1, 2, 3]), &tids(&[1, 2, 3])),
            tids(&[1, 2, 3])
        );
    }

    #[test]
    fn intersect_pair_skewed_gallop() {
        let long: Vec<Tid> = (0..10_000u64).map(|i| Tid(i * 3)).collect();
        let short = tids(&[3, 2998 * 3, 9999 * 3, 50_000]);
        assert_eq!(
            intersect_pair(&short, &long),
            tids(&[3, 2998 * 3, 9999 * 3])
        );
        // Argument order must not matter.
        assert_eq!(intersect_pair(&long, &short), intersect_pair(&short, &long));
    }

    #[test]
    fn intersect_all_multiway() {
        let a = tids(&[1, 2, 3, 4, 5, 6]);
        let b = tids(&[2, 4, 6, 8]);
        let c = tids(&[4, 5, 6, 7]);
        assert_eq!(intersect_all(&[&a, &b, &c]), tids(&[4, 6]));
        assert_eq!(intersect_all(&[&a]), a);
        assert_eq!(intersect_all(&[]), tids(&[]));
    }

    #[test]
    fn intersect_sorted_into_matches_intersect_all_with_reused_buffers() {
        let a = tids(&[1, 2, 3, 4, 5, 6]);
        let b = tids(&[2, 4, 6, 8]);
        let c = tids(&[4, 5, 6, 7]);
        let mut acc = Vec::new();
        let mut tmp = Vec::new();
        // Same buffers reused across calls with different list families.
        let mut lists: Vec<&[Tid]> = vec![&a, &b, &c];
        let n = intersect_sorted_into(&mut lists, &mut acc, &mut tmp);
        assert_eq!(acc, intersect_all(&[&a, &b, &c]));
        assert_eq!(n, acc.len() as u64);
        let mut lists2: Vec<&[Tid]> = vec![&a, &b];
        let n2 = intersect_sorted_into(&mut lists2, &mut acc, &mut tmp);
        assert_eq!(acc, intersect_pair(&a, &b));
        assert_eq!(n2, acc.len() as u64);
    }

    #[test]
    fn intersect_pair_into_clears_previous_contents() {
        let mut out = tids(&[9, 9, 9]);
        intersect_pair_into(&tids(&[1, 3]), &tids(&[3, 5]), &mut out);
        assert_eq!(out, tids(&[3]));
        intersect_pair_into(&tids(&[1]), &tids(&[2]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersect_all_short_circuits_on_empty() {
        let a = tids(&[1, 2]);
        let empty = tids(&[]);
        let b = tids(&[1]);
        assert_eq!(intersect_all(&[&a, &empty, &b]), tids(&[]));
    }

    /// Reference intersection: naive two-pointer merge.
    fn naive(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
        let mut out = Vec::new();
        merge_sink(a, b, &mut out);
        out
    }

    #[test]
    fn kernel_decision_table() {
        // Heavy skew → gallop.
        let short = tids(&[5, 500]);
        let long: Vec<Tid> = (0..100).map(|i| Tid(i * 7)).collect();
        assert_eq!(kernel_for(&short, &long), IntersectKernel::Gallop);
        assert_eq!(kernel_for(&long, &short), IntersectKernel::Gallop);
        // Comparable lengths over a dense window → bitset.
        let a: Vec<Tid> = (0..200).map(Tid).collect();
        let b: Vec<Tid> = (0..200).map(|i| Tid(i * 2)).collect();
        assert_eq!(kernel_for(&a, &b), IntersectKernel::Bitset);
        // Comparable lengths over a very sparse window → merge.
        let sa: Vec<Tid> = (0..100).map(|i| Tid(i * 100_000)).collect();
        let sb: Vec<Tid> = (0..100).map(|i| Tid(i * 100_000 + 500)).collect();
        assert_eq!(kernel_for(&sa, &sb), IntersectKernel::Merge);
        // Degenerate inputs report the merge kernel.
        assert_eq!(kernel_for(&[], &a), IntersectKernel::Merge);
        let lo = tids(&[1, 2, 3]);
        let hi = tids(&[100, 101, 102]);
        assert_eq!(kernel_for(&lo, &hi), IntersectKernel::Merge);
    }

    #[test]
    fn all_kernels_agree_on_every_shape() {
        let dense_a: Vec<Tid> = (0..300).map(|i| Tid(i * 2)).collect();
        let dense_b: Vec<Tid> = (0..300).map(|i| Tid(i * 3)).collect();
        let sparse: Vec<Tid> = (0..40).map(|i| Tid(i * i * 17)).collect();
        let skew_short = tids(&[0, 144, 9999]);
        let empty = tids(&[]);
        let disjoint_lo = tids(&[1, 2, 3]);
        let disjoint_hi = tids(&[50_000, 50_001]);
        let equal = tids(&[7, 8, 9]);
        let cases: &[(&[Tid], &[Tid])] = &[
            (&dense_a, &dense_b),
            (&dense_a, &sparse),
            (&sparse, &dense_b),
            (&skew_short, &dense_a),
            (&empty, &dense_a),
            (&dense_a, &empty),
            (&empty, &empty),
            (&disjoint_lo, &disjoint_hi),
            (&equal, &equal),
        ];
        let mut scratch = IntersectScratch::new();
        let mut out = Vec::new();
        for &(a, b) in cases {
            let expect = naive(a, b);
            intersect_gallop_into(a, b, &mut out);
            assert_eq!(out, expect, "gallop vs merge on {}x{}", a.len(), b.len());
            intersect_bitset_into(a, b, &mut out, &mut scratch);
            assert_eq!(out, expect, "bitset vs merge on {}x{}", a.len(), b.len());
            intersect_into(a, b, &mut out, &mut scratch);
            assert_eq!(out, expect, "dispatch vs merge on {}x{}", a.len(), b.len());
            assert_eq!(
                intersect_count(a, b, &mut scratch),
                expect.len() as u64,
                "count vs merge on {}x{}",
                a.len(),
                b.len()
            );
        }
    }

    #[test]
    fn scratch_reuse_carries_no_state() {
        // A dirty scratch (large bitset window, stale acc/tmp) must not
        // change any later result — the reuse contract.
        let mut scratch = IntersectScratch::new();
        let wide: Vec<Tid> = (0..500).map(|i| Tid(i * 64)).collect();
        let _ = intersect_count(&wide, &wide, &mut scratch);
        let mut lists: Vec<&[Tid]> = vec![&wide, &wide, &wide];
        let _ = intersect_sorted_count(&mut lists, &mut scratch);
        let a = tids(&[1, 5, 9]);
        let b = tids(&[5, 9, 11]);
        let mut out = Vec::new();
        intersect_bitset_into(&a, &b, &mut out, &mut scratch);
        assert_eq!(out, tids(&[5, 9]));
        assert_eq!(intersect_count(&a, &b, &mut scratch), 2);
    }

    #[test]
    fn intersect_sorted_count_matches_materialized_multiway() {
        let a = tids(&[1, 2, 3, 4, 5, 6]);
        let b = tids(&[2, 4, 6, 8]);
        let c = tids(&[4, 5, 6, 7]);
        let empty = tids(&[]);
        let mut scratch = IntersectScratch::new();
        let mut lists: Vec<&[Tid]> = vec![&a, &b, &c];
        assert_eq!(
            intersect_sorted_count(&mut lists, &mut scratch),
            intersect_all(&[&a, &b, &c]).len() as u64
        );
        let mut pair: Vec<&[Tid]> = vec![&a, &b];
        assert_eq!(
            intersect_sorted_count(&mut pair, &mut scratch),
            intersect_all(&[&a, &b]).len() as u64
        );
        let mut single: Vec<&[Tid]> = vec![&c];
        assert_eq!(intersect_sorted_count(&mut single, &mut scratch), 4);
        let mut none: Vec<&[Tid]> = vec![];
        assert_eq!(intersect_sorted_count(&mut none, &mut scratch), 0);
        let mut with_empty: Vec<&[Tid]> = vec![&a, &empty, &b];
        assert_eq!(intersect_sorted_count(&mut with_empty, &mut scratch), 0);
    }

    #[test]
    fn materialize_builds_sorted_lists() {
        let b = block(1, &[(1, &[0, 2]), (2, &[1, 2]), (3, &[0, 1, 2])]);
        let lists = BlockTidLists::materialize(&b, 4);
        assert_eq!(lists.item_list(Item(0)), &tids(&[1, 3])[..]);
        assert_eq!(lists.item_list(Item(1)), &tids(&[2, 3])[..]);
        assert_eq!(lists.item_list(Item(2)), &tids(&[1, 2, 3])[..]);
        assert_eq!(lists.item_list(Item(3)), &[] as &[Tid]);
        assert_eq!(lists.n_transactions(), 3);
        assert_eq!(lists.item_support(Item(2)), 3);
    }

    #[test]
    fn item_space_equals_total_item_occurrences() {
        let b = block(1, &[(1, &[0, 2]), (2, &[1, 2]), (3, &[0, 1, 2])]);
        let lists = BlockTidLists::materialize(&b, 4);
        // 2 + 2 + 3 = 7 item occurrences — exactly the transactional size.
        assert_eq!(lists.item_space(), 7);
        assert_eq!(lists.pair_space(), 0);
    }

    #[test]
    fn pair_materialization_is_idempotent_intersection() {
        let b = block(1, &[(1, &[0, 2]), (2, &[1, 2]), (3, &[0, 1, 2])]);
        let mut lists = BlockTidLists::materialize(&b, 4);
        let len = lists.materialize_pair(Item(1), Item(2));
        assert_eq!(len, 2); // TIDs 2 and 3 contain both.
        assert_eq!(lists.pair_list(Item(1), Item(2)).unwrap(), &tids(&[2, 3])[..]);
        assert_eq!(lists.materialize_pair(Item(1), Item(2)), 2);
        assert_eq!(lists.pair_space(), 2);
        assert_eq!(
            lists.materialized_pairs().collect::<Vec<_>>(),
            vec![(Item(1), Item(2))]
        );
        assert_eq!(lists.pair_list(Item(0), Item(3)), None);
    }

    #[test]
    fn store_add_query_remove() {
        let mut store = TidListStore::new(4);
        assert!(store.is_empty());
        store.add_block(&block(1, &[(1, &[0, 1])]));
        store.add_block(&block(2, &[(2, &[1, 2])]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.block(BlockId(1)).unwrap().item_support(Item(0)), 1);
        assert_eq!(store.block(BlockId(2)).unwrap().item_support(Item(2)), 1);
        assert!(store.block(BlockId(3)).is_none());
        assert!(store.remove_block(BlockId(1)));
        assert!(!store.remove_block(BlockId(1)));
        assert_eq!(store.len(), 1);
        let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![BlockId(2)]);
    }

    #[test]
    fn additivity_across_blocks() {
        // Support over two blocks = sum of per-block supports (paper's
        // additivity property).
        let b1 = block(1, &[(1, &[0, 1]), (2, &[0])]);
        let b2 = block(2, &[(3, &[0, 1]), (4, &[1])]);
        let mut store = TidListStore::new(2);
        store.add_block(&b1);
        store.add_block(&b2);
        let total: u64 = store
            .iter()
            .map(|(_, lists)| {
                intersect_pair(lists.item_list(Item(0)), lists.item_list(Item(1))).len() as u64
            })
            .sum();
        assert_eq!(total, 2); // TIDs 1 and 3.
    }
}
