//! Per-block TID-lists and sorted-list intersection.
//!
//! ECUT's insight (paper §3.1.1) rests on two properties of systematic
//! block evolution: **additivity** (the support of an itemset over a window
//! is the sum of its per-block supports) and the **0/1 property** (a BSS
//! selects a block completely or not at all). Together they let each item's
//! TID-list be split into immutable per-block segments, written once when
//! the block arrives and read selectively ever after.
//!
//! TIDs increase in arrival order, so every per-block list is sorted by
//! construction and intersections are sort-merge joins.

use demon_types::{BlockId, Item, Tid, TxBlock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// TID-lists of one block: one sorted list per item, plus optionally
/// materialized 2-itemset lists for ECUT+.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BlockTidLists {
    /// `item_lists[i]` is the sorted list of TIDs of transactions in this
    /// block containing item `i`.
    item_lists: Vec<Vec<Tid>>,
    /// Materialized 2-itemset lists, keyed by the (ordered) item pair.
    pair_lists: BTreeMap<(Item, Item), Vec<Tid>>,
    /// Number of transactions in the block.
    n_transactions: u64,
}

impl BlockTidLists {
    /// Scans `block` once and materializes the TID-list of every item
    /// (paper: "The TID-lists of all items are materialized simultaneously").
    pub fn materialize(block: &TxBlock, n_items: u32) -> Self {
        let mut item_lists = vec![Vec::new(); n_items as usize];
        for tx in block.records() {
            for &item in tx.items() {
                debug_assert!(item.id() < n_items, "item {item} outside universe");
                item_lists[item.index()].push(tx.tid());
            }
        }
        BlockTidLists {
            item_lists,
            pair_lists: BTreeMap::new(),
            n_transactions: block.len() as u64,
        }
    }

    /// Number of transactions in the block.
    pub fn n_transactions(&self) -> u64 {
        self.n_transactions
    }

    /// The TID-list of `item` in this block.
    pub fn item_list(&self, item: Item) -> &[Tid] {
        self.item_lists
            .get(item.index())
            .map_or(&[], |v| v.as_slice())
    }

    /// Support (absolute count) of a single item in this block.
    pub fn item_support(&self, item: Item) -> u64 {
        self.item_list(item).len() as u64
    }

    /// The materialized TID-list of the pair `(a, b)` (ordered `a < b`),
    /// if ECUT+ chose to materialize it for this block.
    pub fn pair_list(&self, a: Item, b: Item) -> Option<&[Tid]> {
        debug_assert!(a < b);
        self.pair_lists.get(&(a, b)).map(|v| v.as_slice())
    }

    /// Materializes the pair `(a, b)` by intersecting the two item lists.
    /// Returns the length of the new list. Idempotent.
    pub fn materialize_pair(&mut self, a: Item, b: Item) -> usize {
        debug_assert!(a < b);
        if let Some(l) = self.pair_lists.get(&(a, b)) {
            return l.len();
        }
        let list = intersect_pair(self.item_list(a), self.item_list(b));
        let len = list.len();
        self.pair_lists.insert((a, b), list);
        len
    }

    /// Stores a pre-computed pair list (ECUT+ budgeted materialization
    /// intersects first to learn the cost, then decides whether to keep).
    pub fn insert_pair(&mut self, a: Item, b: Item, list: Vec<Tid>) {
        debug_assert!(a < b);
        debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "pair list unsorted");
        self.pair_lists.insert((a, b), list);
    }

    /// Iterates over the materialized pairs of this block.
    pub fn materialized_pairs(&self) -> impl Iterator<Item = (Item, Item)> + '_ {
        self.pair_lists.keys().copied()
    }

    /// Total TIDs stored in the per-item lists. One TID models one disk
    /// word, so this doubles as the space occupied by the transactional
    /// representation (paper: the TID-list representation replaces it).
    pub fn item_space(&self) -> u64 {
        self.item_lists.iter().map(|l| l.len() as u64).sum()
    }

    /// Total TIDs stored in materialized pair lists (the *extra* space of
    /// ECUT+, reported in Figure 3).
    pub fn pair_space(&self) -> u64 {
        self.pair_lists.values().map(|l| l.len() as u64).sum()
    }
}

/// The TID-list side of the evolving database: one [`BlockTidLists`]
/// per block, immutable once written.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TidListStore {
    blocks: BTreeMap<BlockId, BlockTidLists>,
    n_items: u32,
}

impl TidListStore {
    /// An empty store over an item universe of size `n_items`.
    pub fn new(n_items: u32) -> Self {
        TidListStore {
            blocks: BTreeMap::new(),
            n_items,
        }
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Materializes and stores the TID-lists of `block`.
    pub fn add_block(&mut self, block: &TxBlock) {
        let lists = BlockTidLists::materialize(block, self.n_items);
        self.blocks.insert(block.id(), lists);
    }

    /// Drops the lists of a retired block.
    pub fn remove_block(&mut self, id: BlockId) -> bool {
        self.blocks.remove(&id).is_some()
    }

    /// The lists of one block.
    pub fn block(&self, id: BlockId) -> Option<&BlockTidLists> {
        self.blocks.get(&id)
    }

    /// Mutable access (ECUT+ pair materialization).
    pub fn block_mut(&mut self, id: BlockId) -> Option<&mut BlockTidLists> {
        self.blocks.get_mut(&id)
    }

    /// Iterates over stored blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BlockTidLists)> {
        self.blocks.iter().map(|(id, b)| (*id, b))
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Intersects two sorted TID-lists with a galloping merge: the shorter list
/// drives, binary-searching the longer one. Equivalent to the merge phase
/// of a sort-merge join (paper §3.1.1) but asymptotically better when the
/// lists are very skewed — the common case when intersecting a rare item
/// with a popular one.
pub fn intersect_pair(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
    let mut out = Vec::new();
    intersect_pair_into(a, b, &mut out);
    out
}

/// [`intersect_pair`] writing into a caller-provided buffer (cleared
/// first), so the counting inner loop can reuse one allocation across
/// candidates and blocks instead of allocating per intersection.
pub fn intersect_pair_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
    out.clear();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return;
    }
    out.reserve(short.len());
    let mut lo = 0usize;
    for &t in short {
        // Gallop forward in the long list until long[hi] ≥ t (or the end).
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < t {
            lo = hi + 1;
            hi = lo + step;
            step *= 2;
        }
        // long[hi] ≥ t when hi is in range, so include it in the search.
        let hi = (hi + 1).min(long.len());
        match long[lo..hi].binary_search(&t) {
            Ok(pos) => {
                out.push(t);
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
        if lo >= long.len() {
            break;
        }
    }
}

/// Intersects any number of sorted TID-lists. Lists are processed shortest
/// first, so the running intersection only shrinks.
///
/// Returns the full TID-list of the conjunction; its length is the support.
pub fn intersect_all(lists: &[&[Tid]]) -> Vec<Tid> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        _ => {
            let mut order: Vec<&[Tid]> = lists.to_vec();
            let mut acc = Vec::new();
            let mut tmp = Vec::new();
            intersect_sorted_into(&mut order, &mut acc, &mut tmp);
            acc
        }
    }
}

/// Allocation-free multiway intersection for the counting inner loop:
/// sorts `lists` shortest-first in place and leaves the conjunction's
/// TID-list in `acc`, using `tmp` as the ping-pong buffer. Returns the
/// support (i.e. `acc.len()`).
///
/// `lists` must hold at least two lists; the single- and zero-list cases
/// are the caller's fast paths (no intersection to perform).
pub fn intersect_sorted_into(lists: &mut [&[Tid]], acc: &mut Vec<Tid>, tmp: &mut Vec<Tid>) -> u64 {
    debug_assert!(lists.len() >= 2, "multiway intersection needs ≥ 2 lists");
    // Tie order among equal-length lists cannot affect the (set-valued)
    // intersection, so the unstable sort keeps results deterministic.
    lists.sort_unstable_by_key(|l| l.len());
    intersect_pair_into(lists[0], lists[1], acc);
    for l in &lists[2..] {
        if acc.is_empty() {
            break;
        }
        intersect_pair_into(acc, l, tmp);
        std::mem::swap(acc, tmp);
    }
    acc.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::Transaction;

    fn tids(v: &[u64]) -> Vec<Tid> {
        v.iter().copied().map(Tid).collect()
    }

    fn block(id: u64, txs: &[(u64, &[u32])]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .map(|(tid, items)| {
                    Transaction::new(Tid(*tid), items.iter().copied().map(Item).collect())
                })
                .collect(),
        )
    }

    #[test]
    fn intersect_pair_basic() {
        assert_eq!(
            intersect_pair(&tids(&[1, 3, 5, 7]), &tids(&[2, 3, 4, 7, 9])),
            tids(&[3, 7])
        );
        assert_eq!(intersect_pair(&tids(&[]), &tids(&[1])), tids(&[]));
        assert_eq!(intersect_pair(&tids(&[1, 2]), &tids(&[3, 4])), tids(&[]));
        assert_eq!(
            intersect_pair(&tids(&[1, 2, 3]), &tids(&[1, 2, 3])),
            tids(&[1, 2, 3])
        );
    }

    #[test]
    fn intersect_pair_skewed_gallop() {
        let long: Vec<Tid> = (0..10_000u64).map(|i| Tid(i * 3)).collect();
        let short = tids(&[3, 2998 * 3, 9999 * 3, 50_000]);
        assert_eq!(
            intersect_pair(&short, &long),
            tids(&[3, 2998 * 3, 9999 * 3])
        );
        // Argument order must not matter.
        assert_eq!(intersect_pair(&long, &short), intersect_pair(&short, &long));
    }

    #[test]
    fn intersect_all_multiway() {
        let a = tids(&[1, 2, 3, 4, 5, 6]);
        let b = tids(&[2, 4, 6, 8]);
        let c = tids(&[4, 5, 6, 7]);
        assert_eq!(intersect_all(&[&a, &b, &c]), tids(&[4, 6]));
        assert_eq!(intersect_all(&[&a]), a);
        assert_eq!(intersect_all(&[]), tids(&[]));
    }

    #[test]
    fn intersect_sorted_into_matches_intersect_all_with_reused_buffers() {
        let a = tids(&[1, 2, 3, 4, 5, 6]);
        let b = tids(&[2, 4, 6, 8]);
        let c = tids(&[4, 5, 6, 7]);
        let mut acc = Vec::new();
        let mut tmp = Vec::new();
        // Same buffers reused across calls with different list families.
        let mut lists: Vec<&[Tid]> = vec![&a, &b, &c];
        let n = intersect_sorted_into(&mut lists, &mut acc, &mut tmp);
        assert_eq!(acc, intersect_all(&[&a, &b, &c]));
        assert_eq!(n, acc.len() as u64);
        let mut lists2: Vec<&[Tid]> = vec![&a, &b];
        let n2 = intersect_sorted_into(&mut lists2, &mut acc, &mut tmp);
        assert_eq!(acc, intersect_pair(&a, &b));
        assert_eq!(n2, acc.len() as u64);
    }

    #[test]
    fn intersect_pair_into_clears_previous_contents() {
        let mut out = tids(&[9, 9, 9]);
        intersect_pair_into(&tids(&[1, 3]), &tids(&[3, 5]), &mut out);
        assert_eq!(out, tids(&[3]));
        intersect_pair_into(&tids(&[1]), &tids(&[2]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersect_all_short_circuits_on_empty() {
        let a = tids(&[1, 2]);
        let empty = tids(&[]);
        let b = tids(&[1]);
        assert_eq!(intersect_all(&[&a, &empty, &b]), tids(&[]));
    }

    #[test]
    fn materialize_builds_sorted_lists() {
        let b = block(1, &[(1, &[0, 2]), (2, &[1, 2]), (3, &[0, 1, 2])]);
        let lists = BlockTidLists::materialize(&b, 4);
        assert_eq!(lists.item_list(Item(0)), &tids(&[1, 3])[..]);
        assert_eq!(lists.item_list(Item(1)), &tids(&[2, 3])[..]);
        assert_eq!(lists.item_list(Item(2)), &tids(&[1, 2, 3])[..]);
        assert_eq!(lists.item_list(Item(3)), &[] as &[Tid]);
        assert_eq!(lists.n_transactions(), 3);
        assert_eq!(lists.item_support(Item(2)), 3);
    }

    #[test]
    fn item_space_equals_total_item_occurrences() {
        let b = block(1, &[(1, &[0, 2]), (2, &[1, 2]), (3, &[0, 1, 2])]);
        let lists = BlockTidLists::materialize(&b, 4);
        // 2 + 2 + 3 = 7 item occurrences — exactly the transactional size.
        assert_eq!(lists.item_space(), 7);
        assert_eq!(lists.pair_space(), 0);
    }

    #[test]
    fn pair_materialization_is_idempotent_intersection() {
        let b = block(1, &[(1, &[0, 2]), (2, &[1, 2]), (3, &[0, 1, 2])]);
        let mut lists = BlockTidLists::materialize(&b, 4);
        let len = lists.materialize_pair(Item(1), Item(2));
        assert_eq!(len, 2); // TIDs 2 and 3 contain both.
        assert_eq!(lists.pair_list(Item(1), Item(2)).unwrap(), &tids(&[2, 3])[..]);
        assert_eq!(lists.materialize_pair(Item(1), Item(2)), 2);
        assert_eq!(lists.pair_space(), 2);
        assert_eq!(
            lists.materialized_pairs().collect::<Vec<_>>(),
            vec![(Item(1), Item(2))]
        );
        assert_eq!(lists.pair_list(Item(0), Item(3)), None);
    }

    #[test]
    fn store_add_query_remove() {
        let mut store = TidListStore::new(4);
        assert!(store.is_empty());
        store.add_block(&block(1, &[(1, &[0, 1])]));
        store.add_block(&block(2, &[(2, &[1, 2])]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.block(BlockId(1)).unwrap().item_support(Item(0)), 1);
        assert_eq!(store.block(BlockId(2)).unwrap().item_support(Item(2)), 1);
        assert!(store.block(BlockId(3)).is_none());
        assert!(store.remove_block(BlockId(1)));
        assert!(!store.remove_block(BlockId(1)));
        assert_eq!(store.len(), 1);
        let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![BlockId(2)]);
    }

    #[test]
    fn additivity_across_blocks() {
        // Support over two blocks = sum of per-block supports (paper's
        // additivity property).
        let b1 = block(1, &[(1, &[0, 1]), (2, &[0])]);
        let b2 = block(2, &[(3, &[0, 1]), (4, &[1])]);
        let mut store = TidListStore::new(2);
        store.add_block(&b1);
        store.add_block(&b2);
        let total: u64 = store
            .iter()
            .map(|(_, lists)| {
                intersect_pair(lists.item_list(Item(0)), lists.item_list(Item(1))).len() as u64
            })
            .sum();
        assert_eq!(total, 2); // TIDs 1 and 3.
    }
}
