//! Association rules derived from a maintained frequent-itemset model.
//!
//! The paper's motivating analyst (§2.2) works with *rules* ("the set of
//! frequent itemsets discovered from the database is used by an analyst
//! to devise marketing strategies"). Rules are a pure function of the
//! maintained model: for every frequent itemset `Z` and non-empty proper
//! subset `A ⊂ Z`, the rule `A ⇒ Z∖A` holds with
//! `confidence = σ(Z)/σ(A)` and `lift = confidence / σ(Z∖A)`. Because
//! BORDERS keeps exact supports for all of `L`, rule derivation never
//! rescans data — maintaining the itemsets maintains the rules.

use crate::model::FrequentItemsets;
use demon_types::ItemSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An association rule `antecedent ⇒ consequent` with its statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The left-hand side `A`.
    pub antecedent: ItemSet,
    /// The right-hand side `Z ∖ A`.
    pub consequent: ItemSet,
    /// Support fraction of `Z = A ∪ consequent`.
    pub support: f64,
    /// `σ(Z) / σ(A)`.
    pub confidence: f64,
    /// `confidence / σ(consequent)` — how much the antecedent raises the
    /// consequent's probability over its base rate.
    pub lift: f64,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ⇒ {} (sup {:.3}, conf {:.3}, lift {:.2})",
            self.antecedent, self.consequent, self.support, self.confidence, self.lift
        )
    }
}

/// Derives all rules meeting `min_confidence` from the model's frequent
/// itemsets of size ≥ 2.
///
/// Antecedents are enumerated as all non-empty proper subsets of each
/// frequent itemset; the classic confidence-monotonicity prune applies
/// (if `A ⇒ Z∖A` fails, any `A' ⊂ A` fails too, since `σ(A') ≥ σ(A)`),
/// implemented by walking antecedents from large to small.
pub fn derive_rules(model: &FrequentItemsets, min_confidence: f64) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence must be in [0,1]"
    );
    let n = model.n_transactions();
    if n == 0 {
        return Vec::new();
    }
    let mut rules = Vec::new();
    for (z, &z_count) in model.frequent() {
        if z.len() < 2 {
            continue;
        }
        // Enumerate antecedents by size, large → small, pruning the
        // subsets of failed antecedents.
        let mut level: Vec<ItemSet> = z.proper_maximal_subsets().collect();
        while !level.is_empty() {
            let mut survivors: Vec<ItemSet> = Vec::new();
            for a in &level {
                if a.is_empty() {
                    continue;
                }
                let Some(a_count) = model.support(a) else {
                    continue; // only frequent subsets are tracked; σ(A) ≥ σ(Z) ≥ κ·n so this is defensive
                };
                if a_count == 0 {
                    continue;
                }
                let confidence = z_count as f64 / a_count as f64;
                if confidence < min_confidence {
                    continue; // prune: smaller subsets of `a` only do worse
                }
                let consequent: ItemSet = z
                    .items()
                    .iter()
                    .copied()
                    .filter(|i| !a.contains(*i))
                    .collect();
                let cons_frac = model
                    .support(&consequent)
                    .map(|c| c as f64 / n as f64)
                    .unwrap_or(0.0);
                let lift = if cons_frac > 0.0 {
                    confidence / cons_frac
                } else {
                    f64::INFINITY
                };
                rules.push(Rule {
                    antecedent: a.clone(),
                    consequent,
                    support: z_count as f64 / n as f64,
                    confidence,
                    lift,
                });
                survivors.push(a.clone());
            }
            // Next level: maximal subsets of surviving antecedents.
            let mut next: Vec<ItemSet> = Vec::new();
            for s in survivors {
                for sub in s.proper_maximal_subsets() {
                    if !sub.is_empty() && !next.contains(&sub) {
                        next.push(sub);
                    }
                }
            }
            level = next;
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.total_cmp(&a.support))
            .then(a.antecedent.cmp(&b.antecedent))
            .then(a.consequent.cmp(&b.consequent))
    });
    rules
}

/// The top-`k` rules by `(confidence, support)`, a convenience for the
/// monitoring loop.
pub fn top_rules(model: &FrequentItemsets, min_confidence: f64, k: usize) -> Vec<Rule> {
    let mut rules = derive_rules(model, min_confidence);
    rules.truncate(k);
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TxStore;
    use demon_types::{BlockId, Item, MinSupport, Tid, Transaction, TxBlock};

    fn model_over(txs: &[&[u32]], kappa: f64) -> FrequentItemsets {
        let block = TxBlock::new(
            BlockId(1),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(Tid(i as u64 + 1), items.iter().copied().map(Item).collect())
                })
                .collect(),
        );
        let mut store = TxStore::new(8);
        store.add_block(block);
        FrequentItemsets::mine_from(&store, &[BlockId(1)], MinSupport::new(kappa).unwrap())
            .unwrap()
    }

    #[test]
    fn derives_rules_with_exact_statistics() {
        // 0 appears 4×, {0,1} 3×, 1 appears 3×.
        let m = model_over(&[&[0, 1], &[0, 1], &[0, 1], &[0], &[2]], 0.2);
        let rules = derive_rules(&m, 0.0);
        let r01 = rules
            .iter()
            .find(|r| r.antecedent == ItemSet::from_ids(&[0]))
            .expect("0 ⇒ 1 exists");
        assert_eq!(r01.consequent, ItemSet::from_ids(&[1]));
        assert!((r01.support - 0.6).abs() < 1e-12);
        assert!((r01.confidence - 0.75).abs() < 1e-12);
        assert!((r01.lift - 0.75 / 0.6).abs() < 1e-12);
        let r10 = rules
            .iter()
            .find(|r| r.antecedent == ItemSet::from_ids(&[1]))
            .expect("1 ⇒ 0 exists");
        assert!((r10.confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_confidence_filters() {
        let m = model_over(&[&[0, 1], &[0, 1], &[0, 1], &[0], &[2]], 0.2);
        let rules = derive_rules(&m, 0.9);
        assert!(rules.iter().all(|r| r.confidence >= 0.9));
        assert!(rules
            .iter()
            .any(|r| r.antecedent == ItemSet::from_ids(&[1])));
        assert!(!rules
            .iter()
            .any(|r| r.antecedent == ItemSet::from_ids(&[0])));
    }

    #[test]
    fn three_item_rules_enumerate_all_antecedents() {
        // {0,1,2} frequent in every transaction: all 6 directed rules hold
        // with confidence 1.
        let m = model_over(&[&[0, 1, 2], &[0, 1, 2], &[0, 1, 2]], 0.5);
        let rules = derive_rules(&m, 0.99);
        let from_triple: Vec<&Rule> = rules
            .iter()
            .filter(|r| r.antecedent.len() + r.consequent.len() == 3)
            .collect();
        // Antecedents: 3 singletons + 3 pairs.
        assert_eq!(from_triple.len(), 6);
        for r in from_triple {
            assert!((r.confidence - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rules_sorted_by_confidence_then_support() {
        let m = model_over(
            &[&[0, 1], &[0, 1], &[0, 1], &[0], &[1, 2], &[1, 2], &[2], &[2]],
            0.1,
        );
        let rules = derive_rules(&m, 0.0);
        for w in rules.windows(2) {
            assert!(
                w[0].confidence >= w[1].confidence
                    || (w[0].confidence == w[1].confidence && w[0].support >= w[1].support)
            );
        }
        let top = top_rules(&m, 0.0, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], rules[0]);
    }

    #[test]
    fn empty_model_yields_no_rules() {
        let m = FrequentItemsets::empty(MinSupport::new(0.1).unwrap(), 4);
        assert!(derive_rules(&m, 0.5).is_empty());
    }

    #[test]
    fn display_is_readable() {
        let m = model_over(&[&[0, 1], &[0, 1]], 0.5);
        let rules = derive_rules(&m, 0.5);
        let s = rules[0].to_string();
        assert!(s.contains('⇒') && s.contains("conf"));
    }

    #[test]
    #[should_panic(expected = "confidence must be in")]
    fn rejects_invalid_confidence() {
        let m = model_over(&[&[0]], 0.5);
        derive_rules(&m, 1.5);
    }
}
