//! The candidate prefix tree of Mueller '95, used by **PT-Scan**.
//!
//! BORDERS counts the supports of a set of candidate itemsets by organizing
//! them in a prefix tree and scanning the dataset once (paper §3.1.1). Each
//! root-to-marked-node path spells a candidate (items strictly increasing);
//! counting a transaction walks every matching path. Because transactions
//! and candidates are both sorted, each candidate is reached by at most one
//! increasing subsequence per transaction, so no deduplication is needed.

use demon_types::{Item, ItemSet, TxBlock};

/// Arena index of a tree node.
type NodeId = u32;

#[derive(Clone, Debug, Default)]
struct Node {
    /// Children sorted by edge item (binary-searched during descent).
    children: Vec<(Item, NodeId)>,
    /// Index into the candidate/count arrays when a candidate ends here.
    candidate: Option<u32>,
}

/// A prefix tree over a set of candidate itemsets, accumulating one
/// support count per candidate. Candidates can be added incrementally
/// with [`PrefixTree::insert_candidate`] — the BORDERS detection phase
/// keeps one long-lived tree over `L ∪ NB⁻` and extends it as the
/// cascade generates new candidates.
#[derive(Clone, Debug)]
pub struct PrefixTree {
    nodes: Vec<Node>,
    counts: Vec<u64>,
    n_candidates: usize,
}

const ROOT: NodeId = 0;

impl PrefixTree {
    /// Builds the tree for `candidates`. Duplicate candidates share a node
    /// (and therefore a single count slot — the first occurrence wins).
    pub fn build(candidates: &[ItemSet]) -> Self {
        let mut tree = PrefixTree {
            nodes: vec![Node::default()],
            counts: vec![0; candidates.len()],
            n_candidates: candidates.len(),
        };
        for (ci, cand) in candidates.iter().enumerate() {
            tree.insert(cand, ci as u32);
        }
        tree
    }

    fn insert(&mut self, itemset: &ItemSet, candidate_idx: u32) {
        let mut node = ROOT;
        for &item in itemset.items() {
            node = match self.nodes[node as usize]
                .children
                .binary_search_by_key(&item, |&(it, _)| it)
            {
                Ok(pos) => self.nodes[node as usize].children[pos].1,
                Err(pos) => {
                    let id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::default());
                    self.nodes[node as usize].children.insert(pos, (item, id));
                    id
                }
            };
        }
        let slot = &mut self.nodes[node as usize].candidate;
        if slot.is_none() {
            *slot = Some(candidate_idx);
        }
    }

    /// Adds one candidate after construction, returning its count slot.
    /// When the itemset is already a candidate, the existing slot is
    /// returned (its accumulated count is preserved).
    pub fn insert_candidate(&mut self, itemset: &ItemSet) -> usize {
        let idx = self.counts.len() as u32;
        self.insert(itemset, idx);
        // `insert` keeps an existing slot; detect which case happened.
        let mut node = 0u32;
        for &item in itemset.items() {
            let pos = self.nodes[node as usize]
                .children
                .binary_search_by_key(&item, |&(it, _)| it)
                .expect("path was just inserted");
            node = self.nodes[node as usize].children[pos].1;
        }
        let slot = self.nodes[node as usize].candidate.expect("candidate set");
        if slot == idx {
            self.counts.push(0);
            self.n_candidates += 1;
        }
        slot as usize
    }

    /// Number of candidates the tree was built over.
    pub fn len(&self) -> usize {
        self.n_candidates
    }

    /// Whether the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.n_candidates == 0
    }

    /// Counts one transaction: every candidate that is a subset of `items`
    /// has its count incremented. `items` must be sorted ascending
    /// (guaranteed by [`demon_types::Transaction`]).
    pub fn add_transaction(&mut self, items: &[Item]) {
        if self.n_candidates > 0 {
            self.descend(ROOT, items);
        }
    }

    fn descend(&mut self, node: NodeId, items: &[Item]) {
        if let Some(ci) = self.nodes[node as usize].candidate {
            self.counts[ci as usize] += 1;
        }
        if self.nodes[node as usize].children.is_empty() {
            return;
        }
        for (pos, &item) in items.iter().enumerate() {
            if let Ok(cpos) = self.nodes[node as usize]
                .children
                .binary_search_by_key(&item, |&(it, _)| it)
            {
                let child = self.nodes[node as usize].children[cpos].1;
                self.descend(child, &items[pos + 1..]);
            }
        }
    }

    /// Counts every transaction of a block.
    pub fn count_block(&mut self, block: &TxBlock) {
        for tx in block.records() {
            self.add_transaction(tx.items());
        }
    }

    /// The accumulated counts, in candidate order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the tree, yielding the counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }

    /// Resets all counts to zero, keeping the structure.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

/// An immutable, cache-conscious prefix tree over a fixed candidate set,
/// probed concurrently by every counting shard.
///
/// [`PrefixTree`] interleaves per-node child vectors across the heap and
/// carries its own count array, so parallel PT-Scan used to *clone the
/// whole tree per shard* — at half a million candidates that rebuild
/// dwarfed the scan itself and made the thread sweep anti-scale. The
/// flat tree fixes both problems:
///
/// * **Built once, shared by reference.** Construction happens serially
///   before the parallel region; shards only call
///   [`count_transaction`](FlatPrefixTree::count_transaction) through a
///   shared `&FlatPrefixTree`.
/// * **Struct-of-arrays CSR layout.** All edges live in two parallel
///   arrays (`edge_item`, `edge_child`) indexed by per-node offsets
///   (`edge_start`), so a descent walks contiguous memory instead of
///   chasing one heap allocation per node.
/// * **External counts.** Support counts live in a caller-owned
///   `&mut [u64]` (one flat array per shard, merged by index in shard
///   order), keeping the tree itself immutable and `Sync`.
pub struct FlatPrefixTree {
    /// CSR offsets: node `n`'s edges are `edge_start[n]..edge_start[n+1]`.
    edge_start: Vec<u32>,
    /// Edge labels, sorted ascending within each node's range.
    edge_item: Vec<Item>,
    /// Target node of each edge, parallel to `edge_item`.
    edge_child: Vec<u32>,
    /// Candidate slot ending at each node, or `NO_CANDIDATE`.
    candidate: Vec<u32>,
    n_candidates: usize,
}

/// Sentinel in [`FlatPrefixTree::candidate`] for "no candidate ends here".
const NO_CANDIDATE: u32 = u32::MAX;

/// A count slot [`FlatPrefixTree::count_transaction`] can increment.
///
/// Shards whose transaction range is known to fit keep `u32` slots —
/// half the memory traffic of `u64` on the random-access count array,
/// which is the scan's cache bottleneck — and widen to `u64` only when
/// merging. Incrementing must not overflow: callers pick `u32` only
/// when the number of transactions counted is below `u32::MAX`.
pub trait SupportCell: Copy + Default {
    /// Adds one to the slot.
    fn incr(&mut self);
    /// The slot value as a `u64` (for the merge by index).
    fn widen(self) -> u64;
}

impl SupportCell for u32 {
    fn incr(&mut self) {
        *self += 1;
    }
    fn widen(self) -> u64 {
        u64::from(self)
    }
}

impl SupportCell for u64 {
    fn incr(&mut self) {
        *self += 1;
    }
    fn widen(self) -> u64 {
        self
    }
}

impl FlatPrefixTree {
    /// Builds the flat tree for `candidates`. Like [`PrefixTree::build`],
    /// duplicate candidates share a count slot (first occurrence wins).
    pub fn build(candidates: &[ItemSet]) -> Self {
        assert!(
            candidates.len() < NO_CANDIDATE as usize,
            "candidate index must fit in u32"
        );
        // Build the pointer-y tree once, then flatten it into CSR form;
        // both passes are serial and amortized over the whole scan.
        let tree = PrefixTree::build(candidates);
        let n_nodes = tree.nodes.len();
        let mut edge_start = Vec::with_capacity(n_nodes + 1);
        let mut edge_item = Vec::new();
        let mut edge_child = Vec::new();
        let mut candidate = Vec::with_capacity(n_nodes);
        edge_start.push(0);
        for node in &tree.nodes {
            for &(item, child) in &node.children {
                edge_item.push(item);
                edge_child.push(child);
            }
            edge_start.push(u32::try_from(edge_item.len()).expect("edge count fits in u32"));
            candidate.push(node.candidate.unwrap_or(NO_CANDIDATE));
        }
        FlatPrefixTree {
            edge_start,
            edge_item,
            edge_child,
            candidate,
            n_candidates: candidates.len(),
        }
    }

    /// Number of candidates the tree was built over (the required length
    /// of the `counts` buffer).
    pub fn len(&self) -> usize {
        self.n_candidates
    }

    /// Whether the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.n_candidates == 0
    }

    /// Counts one transaction into `counts` (length ≥ [`len`](Self::len)):
    /// every candidate that is a subset of `items` has its slot
    /// incremented. `items` must be sorted ascending (guaranteed by
    /// [`demon_types::Transaction`]). `&self` is immutable, so any number
    /// of shards may probe the same tree into their own buffers — see
    /// [`SupportCell`] for the `u32`/`u64` slot-width trade-off.
    pub fn count_transaction<C: SupportCell>(&self, items: &[Item], counts: &mut [C]) {
        if self.n_candidates > 0 {
            self.descend(ROOT, items, counts);
        }
    }

    fn descend<C: SupportCell>(&self, node: NodeId, items: &[Item], counts: &mut [C]) {
        let ni = node as usize;
        if self.candidate[ni] != NO_CANDIDATE {
            counts[self.candidate[ni] as usize].incr();
        }
        let edges = self.edge_start[ni] as usize..self.edge_start[ni + 1] as usize;
        if edges.is_empty() {
            return;
        }
        let labels = &self.edge_item[edges.clone()];
        for (pos, &item) in items.iter().enumerate() {
            if let Ok(epos) = labels.binary_search(&item) {
                self.descend(self.edge_child[edges.start + epos], &items[pos + 1..], counts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{BlockId, Tid, Transaction};

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids)
    }

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(Tid(tid), ids.iter().copied().map(Item).collect())
    }

    #[test]
    fn counts_simple_candidates() {
        let cands = vec![set(&[1]), set(&[1, 2]), set(&[2, 3]), set(&[4])];
        let mut t = PrefixTree::build(&cands);
        t.add_transaction(tx(1, &[1, 2, 3]).items());
        t.add_transaction(tx(2, &[2, 3]).items());
        t.add_transaction(tx(3, &[1, 4]).items());
        assert_eq!(t.counts(), &[2, 1, 2, 1]);
    }

    #[test]
    fn empty_tree_counts_nothing() {
        let mut t = PrefixTree::build(&[]);
        assert!(t.is_empty());
        t.add_transaction(tx(1, &[1, 2]).items());
        assert!(t.counts().is_empty());
    }

    #[test]
    fn shared_prefixes_count_independently() {
        let cands = vec![set(&[1, 2, 3]), set(&[1, 2, 4]), set(&[1, 2])];
        let mut t = PrefixTree::build(&cands);
        t.add_transaction(tx(1, &[1, 2, 3]).items());
        t.add_transaction(tx(2, &[1, 2, 4]).items());
        t.add_transaction(tx(3, &[1, 2, 3, 4]).items());
        assert_eq!(t.counts(), &[2, 2, 3]);
    }

    #[test]
    fn candidate_counted_once_per_transaction() {
        // {1,3} must be counted once even though item 3 appears after both
        // potential branch points.
        let cands = vec![set(&[1, 3])];
        let mut t = PrefixTree::build(&cands);
        t.add_transaction(tx(1, &[1, 2, 3]).items());
        assert_eq!(t.counts(), &[1]);
    }

    #[test]
    fn count_block_and_reset() {
        let cands = vec![set(&[1]), set(&[2])];
        let block = TxBlock::new(
            BlockId(1),
            vec![tx(1, &[1]), tx(2, &[1, 2]), tx(3, &[3])],
        );
        let mut t = PrefixTree::build(&cands);
        t.count_block(&block);
        assert_eq!(t.counts(), &[2, 1]);
        t.reset();
        assert_eq!(t.counts(), &[0, 0]);
        t.count_block(&block);
        assert_eq!(t.into_counts(), vec![2, 1]);
    }

    #[test]
    fn matches_naive_counting_on_random_data() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let universe = 20u32;
        // Random candidates of sizes 1..=4.
        let cands: Vec<ItemSet> = (0..60)
            .map(|_| {
                let k = rng.gen_range(1..=4usize);
                let mut ids: Vec<u32> = (0..universe).collect();
                ids.shuffle(&mut rng);
                ItemSet::from_ids(&ids[..k])
            })
            .collect();
        let txs: Vec<Transaction> = (0..300)
            .map(|i| {
                let k = rng.gen_range(1..=10usize);
                let mut ids: Vec<u32> = (0..universe).collect();
                ids.shuffle(&mut rng);
                tx(i, &ids[..k])
            })
            .collect();
        let mut tree = PrefixTree::build(&cands);
        for t in &txs {
            tree.add_transaction(t.items());
        }
        for (ci, cand) in cands.iter().enumerate() {
            let naive = txs
                .iter()
                .filter(|t| t.contains_all(cand.items()))
                .count() as u64;
            // Duplicate candidates share one slot; skip slots shadowed by an
            // earlier identical candidate.
            if cands[..ci].contains(cand) {
                continue;
            }
            assert_eq!(tree.counts()[ci], naive, "candidate {cand}");
        }
    }

    #[test]
    fn flat_tree_matches_pointer_tree() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let universe = 16u32;
        let cands: Vec<ItemSet> = (0..80)
            .map(|_| {
                let k = rng.gen_range(1..=5usize);
                let mut ids: Vec<u32> = (0..universe).collect();
                ids.shuffle(&mut rng);
                ItemSet::from_ids(&ids[..k])
            })
            .collect();
        let mut pointer = PrefixTree::build(&cands);
        let flat = FlatPrefixTree::build(&cands);
        assert_eq!(flat.len(), pointer.len());
        let mut counts = vec![0u64; flat.len()];
        for i in 0..400u64 {
            let k = rng.gen_range(1..=8usize);
            let mut ids: Vec<u32> = (0..universe).collect();
            ids.shuffle(&mut rng);
            let t = tx(i, &ids[..k]);
            pointer.add_transaction(t.items());
            flat.count_transaction(t.items(), &mut counts);
        }
        assert_eq!(counts, pointer.counts());
    }

    #[test]
    fn flat_tree_split_counts_merge_by_index() {
        // Two shards probing the shared tree into separate flat buffers
        // must merge (by index) to the single-buffer result.
        let cands = vec![set(&[1, 2]), set(&[2]), set(&[1, 3])];
        let flat = FlatPrefixTree::build(&cands);
        assert!(!flat.is_empty());
        let txs = [tx(1, &[1, 2, 3]), tx(2, &[2, 3]), tx(3, &[1, 3])];
        let mut whole = vec![0u64; flat.len()];
        for t in &txs {
            flat.count_transaction(t.items(), &mut whole);
        }
        let mut shard_a = vec![0u64; flat.len()];
        let mut shard_b = vec![0u64; flat.len()];
        flat.count_transaction(txs[0].items(), &mut shard_a);
        for t in &txs[1..] {
            flat.count_transaction(t.items(), &mut shard_b);
        }
        let merged: Vec<u64> = shard_a.iter().zip(&shard_b).map(|(a, b)| a + b).collect();
        assert_eq!(merged, whole);
    }
}
