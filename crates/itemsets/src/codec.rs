//! Delta-varint encoding of TID-lists — the on-disk layout.
//!
//! The paper stores per-block TID-lists on disk and argues costs in terms
//! of data fetched. TIDs within a list are strictly increasing, so the
//! natural layout is **delta encoding** (store gaps, not absolute ids)
//! with **LEB128 varints** (small gaps take one byte). Popular items have
//! dense lists — tiny gaps — so exactly the lists that are long are also
//! the ones that compress best, which is why the paper's "TID-lists take
//! the same space as the transactional format" is conservative in
//! practice.
//!
//! Decoding streams: intersections can run over encoded segments without
//! materializing them ([`DecodeIter`]).
//!
//! Every decoding entry point is **panic-free on untrusted input**:
//! truncated, overlong, or overflowing varints surface as
//! [`DemonError::Serde`], never as a panic — these bytes come straight
//! off disk and the durability layer treats decoders as validators.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use bytes::{BufMut, Bytes, BytesMut};
use demon_types::{obs, DemonError, Result, Tid};

/// Encodes a sorted TID-list as delta varints.
///
/// Panics in debug builds when the input is not strictly increasing.
pub fn encode(list: &[Tid]) -> Bytes {
    debug_assert!(
        list.windows(2).all(|w| w[0] < w[1]),
        "TID-lists are strictly increasing"
    );
    let mut buf = BytesMut::with_capacity(list.len() + 4);
    let mut prev = 0u64;
    for t in list {
        let gap = t.0 - prev;
        put_varint(&mut buf, gap);
        prev = t.0;
    }
    obs::add(obs::Counter::CodecBytes, buf.len() as u64);
    buf.freeze()
}

/// Decodes an encoded list back to TIDs. Truncated or overlong input is
/// an error, not a panic.
pub fn decode(bytes: &Bytes) -> Result<Vec<Tid>> {
    obs::add(obs::Counter::CodecBytes, bytes.len() as u64);
    let mut out = Vec::new();
    let mut iter = DecodeIter::new(bytes.clone());
    for t in iter.by_ref() {
        out.push(t);
    }
    match iter.take_error() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Streaming decoder over an encoded TID-list.
///
/// Iteration stops at the first malformed gap; [`DecodeIter::take_error`]
/// reports whether the stream ended cleanly or on corrupt bytes.
pub struct DecodeIter {
    bytes: Bytes,
    pos: usize,
    acc: u64,
    error: Option<DemonError>,
}

impl DecodeIter {
    /// A decoder positioned at the start of `bytes`.
    pub fn new(bytes: Bytes) -> Self {
        DecodeIter {
            bytes,
            pos: 0,
            acc: 0,
            error: None,
        }
    }

    /// The decoding error that terminated iteration, if any. `None` means
    /// every byte so far decoded cleanly.
    pub fn take_error(&mut self) -> Option<DemonError> {
        self.error.take()
    }
}

impl Iterator for DecodeIter {
    type Item = Tid;

    fn next(&mut self) -> Option<Tid> {
        if self.error.is_some() || self.pos >= self.bytes.len() {
            return None;
        }
        let (gap, read) = match get_varint(&self.bytes[self.pos..]) {
            Ok(ok) => ok,
            Err(e) => {
                self.error = Some(e);
                return None;
            }
        };
        self.pos += read;
        self.acc = match self.acc.checked_add(gap) {
            Some(v) => v,
            None => {
                self.error = Some(DemonError::Serde(format!(
                    "TID accumulator overflow at byte {}",
                    self.pos
                )));
                return None;
            }
        };
        Some(Tid(self.acc))
    }
}

impl std::iter::FusedIterator for DecodeIter {}

/// Appends one LEB128 varint to `buf`.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Maximum encoded length of a `u64` LEB128 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Reads one LEB128 varint, returning `(value, bytes_consumed)`.
///
/// Returns [`DemonError::Serde`] when the input ends mid-varint
/// (truncation) or when the encoding runs past 10 bytes / overflows a
/// `u64` (overlong) — corrupt bytes must never panic.
pub fn get_varint(bytes: &[u8]) -> Result<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(DemonError::Serde(
                "overlong varint (more than 10 bytes)".into(),
            ));
        }
        let low = u64::from(b & 0x7F);
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err(DemonError::Serde(
                "overlong varint (overflows u64)".into(),
            ));
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(DemonError::Serde(format!(
        "truncated varint ({} continuation bytes, no terminator)",
        bytes.len()
    )))
}

/// Intersects two *encoded* lists by streaming both decoders — the
/// disk-resident analogue of [`crate::tidlist::intersect_pair`]. Corrupt
/// tails simply end the affected stream (the callers intersect trusted
/// in-memory encodings; the persistence layer validates checksums before
/// bytes ever reach this point).
pub fn intersect_encoded(a: &Bytes, b: &Bytes) -> Vec<Tid> {
    let mut out = Vec::new();
    let mut ia = DecodeIter::new(a.clone());
    let mut ib = DecodeIter::new(b.clone());
    let (mut x, mut y) = (ia.next(), ib.next());
    while let (Some(tx), Some(ty)) = (x, y) {
        match tx.cmp(&ty) {
            std::cmp::Ordering::Less => x = ia.next(),
            std::cmp::Ordering::Greater => y = ib.next(),
            std::cmp::Ordering::Equal => {
                out.push(tx);
                x = ia.next();
                y = ib.next();
            }
        }
    }
    out
}

/// Encoded size in bytes of a list — the honest disk-space accounting
/// behind the Figure 3 style space reports.
pub fn encoded_size(list: &[Tid]) -> usize {
    encode(list).len()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::tidlist::intersect_pair;

    fn tids(v: &[u64]) -> Vec<Tid> {
        v.iter().copied().map(Tid).collect()
    }

    #[test]
    fn roundtrip_small_lists() {
        for list in [
            vec![],
            tids(&[1]),
            tids(&[1, 2, 3]),
            tids(&[5, 100, 10_000, 10_001]),
            tids(&[u64::MAX - 1, u64::MAX]),
        ] {
            let enc = encode(&list);
            assert_eq!(decode(&enc).unwrap(), list);
        }
    }

    #[test]
    fn dense_lists_take_one_byte_per_tid() {
        let list: Vec<Tid> = (1..=1000u64).map(Tid).collect();
        let enc = encode(&list);
        assert_eq!(enc.len(), 1000, "gap-1 lists are one byte per entry");
    }

    #[test]
    fn sparse_lists_grow_with_gap_magnitude() {
        let list: Vec<Tid> = (1..=100u64).map(|i| Tid(i * 1_000_000)).collect();
        let enc = encode(&list);
        assert!(enc.len() > 100, "million-sized gaps need multi-byte varints");
        assert!(enc.len() <= 100 * 10);
        assert_eq!(decode(&enc).unwrap(), list);
    }

    #[test]
    fn streaming_decoder_matches_batch() {
        let list = tids(&[3, 7, 8, 4000, 4001, 9_999_999]);
        let enc = encode(&list);
        let streamed: Vec<Tid> = DecodeIter::new(enc.clone()).collect();
        assert_eq!(streamed, decode(&enc).unwrap());
    }

    #[test]
    fn encoded_intersection_matches_plain() {
        let a = tids(&[1, 3, 5, 7, 9, 100, 200]);
        let b = tids(&[2, 3, 4, 7, 100, 201]);
        let ea = encode(&a);
        let eb = encode(&b);
        assert_eq!(intersect_encoded(&ea, &eb), intersect_pair(&a, &b));
        // Empty cases.
        assert_eq!(intersect_encoded(&encode(&[]), &eb), vec![]);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let enc = encode(&tids(&[1_000_000]));
        let cut = enc.slice(0..enc.len() - 1);
        let err = decode(&cut).unwrap_err();
        assert!(matches!(err, DemonError::Serde(_)), "got {err}");
        assert!(err.to_string().contains("truncated varint"), "{err}");
    }

    #[test]
    fn every_truncation_of_every_list_errors() {
        for list in [tids(&[1]), tids(&[300, 70_000]), tids(&[u64::MAX])] {
            let enc = encode(&list);
            for cut in 0..enc.len() {
                let sliced = enc.slice(0..cut);
                match decode(&sliced) {
                    Ok(shorter) => assert!(shorter.len() < list.len()),
                    Err(e) => assert!(matches!(e, DemonError::Serde(_))),
                }
            }
        }
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // Eleven continuation bytes: too long for any u64.
        let bytes = Bytes::from(vec![0x80u8; 11]);
        let err = get_varint(&bytes).unwrap_err();
        assert!(err.to_string().contains("overlong"), "{err}");
        // Ten bytes whose top byte overflows 64 bits.
        let mut overflow = vec![0xFFu8; 9];
        overflow.push(0x7F);
        let err = get_varint(&overflow).unwrap_err();
        assert!(err.to_string().contains("overlong"), "{err}");
        // u64::MAX itself still decodes: 9 × 0xFF then 0x01.
        let mut max = vec![0xFFu8; 9];
        max.push(0x01);
        assert_eq!(get_varint(&max).unwrap(), (u64::MAX, 10));
    }

    #[test]
    fn delta_overflow_is_an_error() {
        // Two maximal gaps: the accumulator would exceed u64::MAX.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        put_varint(&mut buf, u64::MAX);
        let err = decode(&buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn random_roundtrip_property() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.gen_range(0..200);
            let mut vals: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
            vals.sort_unstable();
            vals.dedup();
            let list: Vec<Tid> = vals.into_iter().map(Tid).collect();
            let enc = encode(&list);
            assert_eq!(decode(&enc).unwrap(), list);
            assert_eq!(encoded_size(&list), enc.len());
        }
    }
}
