//! Delta-varint encoding of TID-lists — the on-disk layout.
//!
//! The paper stores per-block TID-lists on disk and argues costs in terms
//! of data fetched. TIDs within a list are strictly increasing, so the
//! natural layout is **delta encoding** (store gaps, not absolute ids)
//! with **LEB128 varints** (small gaps take one byte). Popular items have
//! dense lists — tiny gaps — so exactly the lists that are long are also
//! the ones that compress best, which is why the paper's "TID-lists take
//! the same space as the transactional format" is conservative in
//! practice.
//!
//! Decoding streams: intersections can run over encoded segments without
//! materializing them ([`DecodeIter`]).

use bytes::{BufMut, Bytes, BytesMut};
use demon_types::Tid;

/// Encodes a sorted TID-list as delta varints.
///
/// Panics in debug builds when the input is not strictly increasing.
pub fn encode(list: &[Tid]) -> Bytes {
    debug_assert!(
        list.windows(2).all(|w| w[0] < w[1]),
        "TID-lists are strictly increasing"
    );
    let mut buf = BytesMut::with_capacity(list.len() + 4);
    let mut prev = 0u64;
    for t in list {
        let gap = t.0 - prev;
        put_varint(&mut buf, gap);
        prev = t.0;
    }
    buf.freeze()
}

/// Decodes an encoded list back to TIDs.
pub fn decode(bytes: &Bytes) -> Vec<Tid> {
    DecodeIter::new(bytes.clone()).collect()
}

/// Streaming decoder over an encoded TID-list.
pub struct DecodeIter {
    bytes: Bytes,
    pos: usize,
    acc: u64,
}

impl DecodeIter {
    /// A decoder positioned at the start of `bytes`.
    pub fn new(bytes: Bytes) -> Self {
        DecodeIter {
            bytes,
            pos: 0,
            acc: 0,
        }
    }
}

impl Iterator for DecodeIter {
    type Item = Tid;

    fn next(&mut self) -> Option<Tid> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let (gap, read) = get_varint(&self.bytes[self.pos..]);
        self.pos += read;
        self.acc += gap;
        Some(Tid(self.acc))
    }
}

/// Appends one LEB128 varint to `buf`.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads one LEB128 varint, returning `(value, bytes_consumed)`.
///
/// Panics on truncated input (the persistence layer validates lengths
/// before decoding).
pub fn get_varint(bytes: &[u8]) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return (v, i + 1);
        }
        shift += 7;
    }
    panic!("truncated varint in encoded TID-list");
}

/// Intersects two *encoded* lists by streaming both decoders — the
/// disk-resident analogue of [`crate::tidlist::intersect_pair`].
pub fn intersect_encoded(a: &Bytes, b: &Bytes) -> Vec<Tid> {
    let mut out = Vec::new();
    let mut ia = DecodeIter::new(a.clone());
    let mut ib = DecodeIter::new(b.clone());
    let (mut x, mut y) = (ia.next(), ib.next());
    while let (Some(tx), Some(ty)) = (x, y) {
        match tx.cmp(&ty) {
            std::cmp::Ordering::Less => x = ia.next(),
            std::cmp::Ordering::Greater => y = ib.next(),
            std::cmp::Ordering::Equal => {
                out.push(tx);
                x = ia.next();
                y = ib.next();
            }
        }
    }
    out
}

/// Encoded size in bytes of a list — the honest disk-space accounting
/// behind the Figure 3 style space reports.
pub fn encoded_size(list: &[Tid]) -> usize {
    encode(list).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tidlist::intersect_pair;

    fn tids(v: &[u64]) -> Vec<Tid> {
        v.iter().copied().map(Tid).collect()
    }

    #[test]
    fn roundtrip_small_lists() {
        for list in [
            vec![],
            tids(&[1]),
            tids(&[1, 2, 3]),
            tids(&[5, 100, 10_000, 10_001]),
            tids(&[u64::MAX - 1, u64::MAX]),
        ] {
            let enc = encode(&list);
            assert_eq!(decode(&enc), list);
        }
    }

    #[test]
    fn dense_lists_take_one_byte_per_tid() {
        let list: Vec<Tid> = (1..=1000u64).map(Tid).collect();
        let enc = encode(&list);
        assert_eq!(enc.len(), 1000, "gap-1 lists are one byte per entry");
    }

    #[test]
    fn sparse_lists_grow_with_gap_magnitude() {
        let list: Vec<Tid> = (1..=100u64).map(|i| Tid(i * 1_000_000)).collect();
        let enc = encode(&list);
        assert!(enc.len() > 100, "million-sized gaps need multi-byte varints");
        assert!(enc.len() <= 100 * 10);
        assert_eq!(decode(&enc), list);
    }

    #[test]
    fn streaming_decoder_matches_batch() {
        let list = tids(&[3, 7, 8, 4000, 4001, 9_999_999]);
        let enc = encode(&list);
        let streamed: Vec<Tid> = DecodeIter::new(enc.clone()).collect();
        assert_eq!(streamed, decode(&enc));
    }

    #[test]
    fn encoded_intersection_matches_plain() {
        let a = tids(&[1, 3, 5, 7, 9, 100, 200]);
        let b = tids(&[2, 3, 4, 7, 100, 201]);
        let ea = encode(&a);
        let eb = encode(&b);
        assert_eq!(intersect_encoded(&ea, &eb), intersect_pair(&a, &b));
        // Empty cases.
        assert_eq!(intersect_encoded(&encode(&[]), &eb), vec![]);
    }

    #[test]
    #[should_panic(expected = "truncated varint")]
    fn truncated_input_is_detected() {
        let enc = encode(&tids(&[1_000_000]));
        let cut = enc.slice(0..enc.len() - 1);
        let _ = decode(&cut);
    }

    #[test]
    fn random_roundtrip_property() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.gen_range(0..200);
            let mut vals: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
            vals.sort_unstable();
            vals.dedup();
            let list: Vec<Tid> = vals.into_iter().map(Tid).collect();
            let enc = encode(&list);
            assert_eq!(decode(&enc), list);
            assert_eq!(encoded_size(&list), enc.len());
        }
    }
}
