//! On-disk persistence of the evolving transactional database.
//!
//! Layout, one directory per store:
//!
//! ```text
//! <dir>/meta.json           n_items + the block manifest
//! <dir>/block_<id>.txs      raw transactions (varint TIDs + delta items)
//! <dir>/block_<id>.tid      per-item TID-lists (delta varints), then the
//!                           materialized pair lists
//! ```
//!
//! Blocks are immutable, so each block writes exactly once when it
//! arrives (the paper's "constructed when D_i is added … used without any
//! further changes"). Numbers are LEB128 varints throughout; lengths are
//! validated before decoding so corrupt files surface as
//! [`DemonError::Serde`] rather than panics.

use crate::codec::{get_varint, put_varint};
use crate::store::TxStore;
use crate::tidlist::BlockTidLists;
use bytes::BytesMut;
use demon_types::{Block, BlockId, DemonError, Item, Result, Tid, Transaction, TxBlock};
use serde::{Deserialize, Serialize};
use std::path::Path;

#[derive(Serialize, Deserialize)]
struct Meta {
    n_items: u32,
    blocks: Vec<BlockMeta>,
}

#[derive(Serialize, Deserialize)]
struct BlockMeta {
    id: u64,
    n_transactions: u64,
    /// Wall-clock span `(start_secs, end_secs)`, when known.
    #[serde(default)]
    interval: Option<(u64, u64)>,
}

/// Persists `store` under `dir` (created if missing). Existing files for
/// the same blocks are overwritten; stale files are not removed.
pub fn save_store(store: &TxStore, dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut meta = Meta {
        n_items: store.n_items(),
        blocks: Vec::new(),
    };
    for id in store.block_ids() {
        let block = store.block(id).expect("listed block exists");
        let lists = store
            .tidlists()
            .block(id)
            .expect("tidlists materialized on add");
        meta.blocks.push(BlockMeta {
            id: id.value(),
            n_transactions: block.len() as u64,
            interval: block.interval().map(|iv| (iv.start.secs(), iv.end.secs())),
        });
        std::fs::write(dir.join(format!("block_{}.txs", id.value())), encode_txs(block))?;
        std::fs::write(
            dir.join(format!("block_{}.tid", id.value())),
            encode_lists(lists, store.n_items()),
        )?;
    }
    let json = serde_json::to_vec_pretty(&meta).map_err(|e| DemonError::Serde(e.to_string()))?;
    std::fs::write(dir.join("meta.json"), json)?;
    Ok(())
}

/// Loads a store persisted by [`save_store`].
pub fn load_store(dir: &Path) -> Result<TxStore> {
    let meta_bytes = std::fs::read(dir.join("meta.json"))?;
    let meta: Meta =
        serde_json::from_slice(&meta_bytes).map_err(|e| DemonError::Serde(e.to_string()))?;
    let mut store = TxStore::new(meta.n_items);
    for bm in &meta.blocks {
        let tx_bytes = std::fs::read(dir.join(format!("block_{}.txs", bm.id)))?;
        let mut block = decode_txs(&tx_bytes, BlockId(bm.id), bm.n_transactions)?;
        if let Some((start, end)) = bm.interval {
            block = Block::with_interval(
                block.id(),
                demon_types::BlockInterval::new(
                    demon_types::Timestamp(start),
                    demon_types::Timestamp(end),
                ),
                block.into_records(),
            );
        }
        store.add_block(block);
        // Reapply materialized pair lists (item lists are rebuilt by
        // add_block; pairs carry the ECUT+ investment across restarts).
        let tid_bytes = std::fs::read(dir.join(format!("block_{}.tid", bm.id)))?;
        apply_pairs(&mut store, BlockId(bm.id), &tid_bytes, meta.n_items)?;
    }
    Ok(store)
}

fn encode_txs(block: &TxBlock) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_varint(&mut buf, block.len() as u64);
    for tx in block.records() {
        put_varint(&mut buf, tx.tid().value());
        put_varint(&mut buf, tx.len() as u64);
        let mut prev = 0u64;
        for item in tx.items() {
            // Items are sorted and unique: delta-1 encoding.
            let v = u64::from(item.id());
            put_varint(&mut buf, v - prev);
            prev = v + 1;
        }
    }
    buf.to_vec()
}

/// A checked varint read.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    if *pos >= bytes.len() {
        return Err(DemonError::Serde("truncated block file".into()));
    }
    // Validate that the varint terminates within the buffer.
    let slice = &bytes[*pos..];
    let end = slice
        .iter()
        .position(|b| b & 0x80 == 0)
        .ok_or_else(|| DemonError::Serde("truncated varint".into()))?;
    let (v, read) = get_varint(&slice[..=end]);
    *pos += read;
    Ok(v)
}

fn decode_txs(bytes: &[u8], id: BlockId, expect: u64) -> Result<TxBlock> {
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos)?;
    if n != expect {
        return Err(DemonError::Serde(format!(
            "block {id}: manifest says {expect} transactions, file has {n}"
        )));
    }
    let mut records = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let tid = Tid(read_varint(bytes, &mut pos)?);
        let len = read_varint(bytes, &mut pos)? as usize;
        let mut items = Vec::with_capacity(len);
        let mut prev = 0u64;
        for _ in 0..len {
            let gap = read_varint(bytes, &mut pos)?;
            let v = prev + gap;
            items.push(Item(u32::try_from(v).map_err(|_| {
                DemonError::Serde("item id overflows u32".into())
            })?));
            prev = v + 1;
        }
        records.push(Transaction::from_sorted(tid, items));
    }
    Ok(Block::new(id, records))
}

fn encode_lists(lists: &BlockTidLists, n_items: u32) -> Vec<u8> {
    let mut buf = BytesMut::new();
    // Item lists, in item order.
    put_varint(&mut buf, u64::from(n_items));
    for i in 0..n_items {
        let list = lists.item_list(Item(i));
        put_varint(&mut buf, list.len() as u64);
        let mut prev = 0u64;
        for t in list {
            put_varint(&mut buf, t.0 - prev);
            prev = t.0;
        }
    }
    // Pair lists.
    let pairs: Vec<(Item, Item)> = lists.materialized_pairs().collect();
    put_varint(&mut buf, pairs.len() as u64);
    for (a, b) in pairs {
        let list = lists.pair_list(a, b).expect("listed pair");
        put_varint(&mut buf, u64::from(a.id()));
        put_varint(&mut buf, u64::from(b.id()));
        put_varint(&mut buf, list.len() as u64);
        let mut prev = 0u64;
        for t in list {
            put_varint(&mut buf, t.0 - prev);
            prev = t.0;
        }
    }
    buf.to_vec()
}

/// Skips the item-list section and re-inserts the pair lists.
fn apply_pairs(store: &mut TxStore, id: BlockId, bytes: &[u8], n_items: u32) -> Result<()> {
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos)?;
    if n != u64::from(n_items) {
        return Err(DemonError::Serde(format!(
            "block {id}: tid file item universe {n} ≠ store universe {n_items}"
        )));
    }
    for _ in 0..n_items {
        let len = read_varint(bytes, &mut pos)?;
        for _ in 0..len {
            read_varint(bytes, &mut pos)?;
        }
    }
    let n_pairs = read_varint(bytes, &mut pos)?;
    let Some(lists) = store.tidlists_mut_for_persist(id) else {
        return Err(DemonError::UnknownBlock(id.value()));
    };
    for _ in 0..n_pairs {
        let a = Item(read_varint(bytes, &mut pos)? as u32);
        let b = Item(read_varint(bytes, &mut pos)? as u32);
        let len = read_varint(bytes, &mut pos)? as usize;
        let mut list = Vec::with_capacity(len);
        let mut prev = 0u64;
        for _ in 0..len {
            prev += read_varint(bytes, &mut pos)?;
            list.push(Tid(prev));
        }
        lists.insert_pair(a, b, list);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::MinSupport;

    fn sample_store() -> TxStore {
        let mut store = TxStore::new(6);
        let mk = |id: u64, base: u64, txs: &[&[u32]]| {
            TxBlock::new(
                BlockId(id),
                txs.iter()
                    .enumerate()
                    .map(|(i, items)| {
                        Transaction::new(
                            Tid(base + i as u64),
                            items.iter().copied().map(Item).collect(),
                        )
                    })
                    .collect(),
            )
        };
        store.add_block(mk(1, 1, &[&[0, 1, 2], &[0, 1], &[3], &[1, 4]]));
        store.add_block(mk(2, 100, &[&[0, 1], &[2, 5], &[0, 1, 5]]));
        store.materialize_pairs(BlockId(1), &[(Item(0), Item(1))], None);
        store
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("demon-persist-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let dir = tmp("roundtrip");
        save_store(&store, &dir).unwrap();
        let back = load_store(&dir).unwrap();
        assert_eq!(back.n_items(), 6);
        assert_eq!(back.block_ids(), store.block_ids());
        for id in store.block_ids() {
            let (a, b) = (store.block(id).unwrap(), back.block(id).unwrap());
            assert_eq!(a.records(), b.records());
            let (la, lb) = (
                store.tidlists().block(id).unwrap(),
                back.tidlists().block(id).unwrap(),
            );
            for i in 0..6u32 {
                assert_eq!(la.item_list(Item(i)), lb.item_list(Item(i)));
            }
        }
        // Pair lists survive.
        assert_eq!(
            back.tidlists()
                .block(BlockId(1))
                .unwrap()
                .pair_list(Item(0), Item(1)),
            store
                .tidlists()
                .block(BlockId(1))
                .unwrap()
                .pair_list(Item(0), Item(1))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reloaded_store_mines_identically() {
        let store = sample_store();
        let dir = tmp("mine");
        save_store(&store, &dir).unwrap();
        let back = load_store(&dir).unwrap();
        let k = MinSupport::new(0.2).unwrap();
        let a = crate::FrequentItemsets::mine_from(&store, &store.block_ids(), k).unwrap();
        let b = crate::FrequentItemsets::mine_from(&back, &back.block_ids(), k).unwrap();
        assert_eq!(a.frequent(), b.frequent());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn intervals_survive_roundtrip() {
        use demon_types::{BlockInterval, Timestamp};
        let mut store = TxStore::new(2);
        let iv = BlockInterval::new(Timestamp(100), Timestamp(200));
        store.add_block(TxBlock::with_interval(
            BlockId(1),
            iv,
            vec![Transaction::new(Tid(1), vec![Item(0)])],
        ));
        let dir = tmp("interval");
        save_store(&store, &dir).unwrap();
        let back = load_store(&dir).unwrap();
        assert_eq!(back.block(BlockId(1)).unwrap().interval(), Some(iv));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_errors() {
        let err = load_store(Path::new("/nonexistent/demon-store")).unwrap_err();
        assert!(matches!(err, DemonError::Io(_)));
    }

    #[test]
    fn corrupt_meta_errors() {
        let dir = tmp("badmeta");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("meta.json"), b"{not json").unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Serde(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_block_file_errors() {
        let store = sample_store();
        let dir = tmp("trunc");
        save_store(&store, &dir).unwrap();
        let path = dir.join("block_1.txs");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Serde(_)), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_mismatch_errors() {
        let store = sample_store();
        let dir = tmp("mismatch");
        save_store(&store, &dir).unwrap();
        // Swap the two block data files: transaction counts disagree.
        let a = std::fs::read(dir.join("block_1.txs")).unwrap();
        let b = std::fs::read(dir.join("block_2.txs")).unwrap();
        std::fs::write(dir.join("block_1.txs"), b).unwrap();
        std::fs::write(dir.join("block_2.txs"), a).unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Serde(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
