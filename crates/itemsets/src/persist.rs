//! On-disk persistence of the evolving transactional database.
//!
//! Layout, one directory per store (**store format version 2**):
//!
//! ```text
//! <dir>/meta.json           n_items + the block manifest + per-file
//!                           checksums + a self-checksum of the manifest
//! <dir>/block_<id>.txs      framed: raw transactions (varint TIDs +
//!                           delta items)
//! <dir>/block_<id>.tid      framed: per-item TID-lists (delta varints),
//!                           then the materialized pair lists
//! <dir>/quarantine/         where salvage moves damaged files
//! ```
//!
//! Blocks are immutable, so each block writes exactly once when it
//! arrives (the paper's "constructed when D_i is added … used without any
//! further changes"). Numbers are LEB128 varints throughout.
//!
//! ## Durability & recovery
//!
//! Every file is written atomically (temp + fsync + rename, see
//! [`demon_types::durable`]) and every binary file carries a framed
//! header (magic, format version, class tag, payload length, CRC32), so
//! torn writes, truncation and bit flips are *detected* before any
//! decoder runs. `meta.json` embeds a `meta_crc` self-checksum over its
//! own semantic content plus the per-file checksums of each block file,
//! which also catches swapped or stale block files. On top of detection
//! sits [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::Strict`] (the [`load_store`] default) — the first
//!   defect aborts the load with a typed [`DemonError`] naming the exact
//!   file (and offset where known);
//! * [`RecoveryPolicy::SalvagePrefix`] — quarantines the first damaged
//!   file under `<dir>/quarantine/`, truncates the store to the longest
//!   consistent block prefix, atomically rewrites the manifest, and
//!   reports what was dropped via [`RecoveryReport`]. When `meta.json`
//!   itself is destroyed the manifest is reconstructed from the
//!   checksum-valid block files (wall-clock intervals are lost and the
//!   report says so). After a salvage the directory loads cleanly under
//!   `Strict` again.
//!
//! [`verify_store`] is the read-only fsck behind `demon-cli verify`: it
//! walks the manifest, re-checks every frame and checksum, and reports
//! *all* damage instead of stopping at the first defect.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::codec::{get_varint, put_varint};
use crate::store::TxStore;
use crate::tidlist::BlockTidLists;
use bytes::BytesMut;
use demon_store::StoreConfig;
use demon_types::durable::{self, FrameClass};
use demon_types::{Block, BlockId, DemonError, Item, Result, Tid, Transaction, TxBlock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Version of the on-disk store layout. Version 2 introduced atomic
/// writes, framed block files and manifest checksums; version 1 (raw
/// unframed files, no checksums) is no longer readable.
pub const STORE_FORMAT_VERSION: u32 = 2;

const META_FILE: &str = "meta.json";
const QUARANTINE_DIR: &str = "quarantine";

#[derive(Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct Meta {
    #[serde(default)]
    format_version: u32,
    n_items: u32,
    blocks: Vec<BlockMeta>,
    /// CRC32 over the canonical serialization of
    /// `(format_version, n_items, blocks)` — detects semantic edits that
    /// still parse as valid JSON.
    #[serde(default)]
    meta_crc: Option<u32>,
}

#[derive(Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct BlockMeta {
    id: u64,
    n_transactions: u64,
    /// Wall-clock span `(start_secs, end_secs)`, when known.
    #[serde(default)]
    interval: Option<(u64, u64)>,
    /// CRC32 of the `.txs` payload, cross-checked against the frame.
    #[serde(default)]
    txs_crc: Option<u32>,
    /// CRC32 of the `.tid` payload, cross-checked against the frame.
    #[serde(default)]
    tid_crc: Option<u32>,
}

/// What [`load_store_with`] does when it meets a damaged file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Abort on the first defect with a typed error naming the exact
    /// file. The right default for pipelines that must not silently lose
    /// data.
    #[default]
    Strict,
    /// Quarantine the first damaged file, keep the longest consistent
    /// block prefix, rewrite the manifest, and report what was dropped.
    SalvagePrefix,
}

/// What a [`RecoveryPolicy::SalvagePrefix`] load did to the store.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Blocks loaded into the returned store, in manifest order.
    pub loaded_blocks: Vec<u64>,
    /// Blocks dropped because they (or an earlier block) were damaged.
    pub dropped_blocks: Vec<u64>,
    /// Files moved to `<dir>/quarantine/`.
    pub quarantined: Vec<PathBuf>,
    /// Stray `*.tmp` files (crash residue) that were removed.
    pub removed_tmp: Vec<PathBuf>,
    /// Human-readable description of the defect that triggered salvage.
    pub first_error: Option<String>,
    /// Set when the manifest had to be reconstructed from block files,
    /// which loses the blocks' wall-clock intervals.
    pub intervals_lost: bool,
}

impl RecoveryReport {
    /// Whether the load needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.dropped_blocks.is_empty() && self.quarantined.is_empty() && self.first_error.is_none()
    }
}

/// Result of a read-only [`verify_store`] fsck pass.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Files that passed every check.
    pub checked: Vec<PathBuf>,
    /// Damaged files with a description of each defect.
    pub damaged: Vec<(PathBuf, String)>,
    /// Stray `*.tmp` files left by an interrupted write (benign).
    pub stray_tmp: Vec<PathBuf>,
    /// Number of files sitting in `<dir>/quarantine/`.
    pub quarantined_files: usize,
}

impl VerifyReport {
    /// Whether the store is fully intact.
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty()
    }
}

fn txs_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("block_{id}.txs"))
}

fn tid_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("block_{id}.tid"))
}

fn corrupt(path: &Path, detail: impl Into<String>) -> DemonError {
    DemonError::Corrupt {
        file: path.display().to_string(),
        detail: detail.into(),
    }
}

/// Rewrites a decode-level [`DemonError::Serde`] into a [`DemonError::Corrupt`]
/// naming the file it came from; other errors pass through.
fn in_file(path: &Path, e: DemonError) -> DemonError {
    match e {
        DemonError::Serde(detail) => corrupt(path, detail),
        other => other,
    }
}

/// Reads a framed block-class file; a missing file is corruption (the
/// manifest references it), not a plain I/O error.
fn read_block_frame(path: &Path, class: FrameClass) -> Result<(Vec<u8>, u32)> {
    match durable::read_framed(path, class) {
        Err(DemonError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            Err(corrupt(path, "file is missing"))
        }
        other => other,
    }
}

fn check_manifest_crc(recorded: Option<u32>, actual: u32, path: &Path) -> Result<()> {
    match recorded {
        None => Err(corrupt(
            path,
            "manifest entry lacks a checksum (store predates format v2?)",
        )),
        Some(expected) if expected != actual => Err(DemonError::ChecksumMismatch {
            file: path.display().to_string(),
            expected,
            actual,
        }),
        Some(_) => Ok(()),
    }
}

/// Canonical checksum of the manifest's semantic content.
fn meta_checksum(meta: &Meta) -> Result<u32> {
    let bytes = serde_json::to_vec(&(meta.format_version, meta.n_items, &meta.blocks))
        .map_err(|e| DemonError::Serde(e.to_string()))?;
    Ok(durable::crc32(&bytes))
}

/// Stamps `meta_crc` and writes the manifest atomically.
fn write_meta(dir: &Path, meta: &mut Meta) -> Result<()> {
    meta.meta_crc = Some(meta_checksum(meta)?);
    let json = serde_json::to_vec_pretty(meta).map_err(|e| DemonError::Serde(e.to_string()))?;
    durable::atomic_write(&dir.join(META_FILE), &json)?;
    Ok(())
}

/// Persists `store` under `dir` (created if missing). Every file is
/// written atomically; the manifest is written last, so a crash at any
/// point leaves either the previous consistent store or the new one.
/// Existing files for the same blocks are overwritten; stale files are
/// not removed.
pub fn save_store(store: &TxStore, dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut meta = Meta {
        format_version: STORE_FORMAT_VERSION,
        n_items: store.n_items(),
        blocks: Vec::new(),
        meta_crc: None,
    };
    for &id in store.block_ids() {
        // One pin covers both representations of the block.
        let entry = store
            .pin_entry(id)?
            .ok_or(DemonError::UnknownBlock(id.value()))?;
        let txs_crc = durable::write_framed(
            &txs_path(dir, id.value()),
            FrameClass::TRANSACTIONS,
            &encode_txs(&entry.block),
        )?;
        let tid_crc = durable::write_framed(
            &tid_path(dir, id.value()),
            FrameClass::TIDLISTS,
            &encode_lists(&entry.lists, store.n_items()),
        )?;
        meta.blocks.push(BlockMeta {
            id: id.value(),
            n_transactions: entry.block.len() as u64,
            interval: entry
                .block
                .interval()
                .map(|iv| (iv.start.secs(), iv.end.secs())),
            txs_crc: Some(txs_crc),
            tid_crc: Some(tid_crc),
        });
    }
    write_meta(dir, &mut meta)
}

/// Persists `store` to `dir` all-or-nothing: the store is written into
/// a sibling temp directory first and renamed over `dir` only once every
/// file (manifest included) is on disk. A failure — or a crash — leaves
/// the previous `dir` untouched and at worst a `<dir>.tmp` /
/// `<dir>.old` residue directory, never a half-written store at `dir`
/// itself. This is what the `demon-serve` `Snapshot` verb and the WAL
/// compactor use, so a snapshot directory either loads under
/// [`RecoveryPolicy::Strict`] or does not exist.
pub fn save_store_atomic(store: &TxStore, dir: &Path) -> Result<()> {
    let tmp = durable::tmp_path(dir);
    if tmp.exists() {
        std::fs::remove_dir_all(&tmp)?;
    }
    if let Err(e) = save_store(store, &tmp) {
        // No partial residue: take the half-written temp dir with us.
        let _ = std::fs::remove_dir_all(&tmp);
        return Err(e);
    }
    if dir.exists() {
        // Swap via a second rename so the live directory is replaced in
        // one atomic step; the displaced copy is deleted best-effort.
        let old = dir.with_extension("old");
        let _ = std::fs::remove_dir_all(&old);
        std::fs::rename(dir, &old)?;
        std::fs::rename(&tmp, dir)?;
        let _ = std::fs::remove_dir_all(&old);
    } else {
        std::fs::rename(&tmp, dir)?;
    }
    if let Some(parent) = dir.parent() {
        // Same best-effort directory fsync as `durable::atomic_write`.
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads a store persisted by [`save_store`] under the default
/// [`RecoveryPolicy::Strict`]: any corruption is a typed error.
pub fn load_store(dir: &Path) -> Result<TxStore> {
    load_store_with(dir, RecoveryPolicy::Strict).map(|(store, _)| store)
}

/// Loads a store under the given [`RecoveryPolicy`], returning the store
/// together with a [`RecoveryReport`] of anything salvage had to do.
pub fn load_store_with(dir: &Path, policy: RecoveryPolicy) -> Result<(TxStore, RecoveryReport)> {
    load_store_configured(dir, policy, &StoreConfig::InMemory)
}

/// Loads a store like [`load_store_with`], but builds the in-process
/// [`TxStore`] on the given storage-engine configuration — e.g. a
/// [`StoreConfig::budget`] so the replayed blocks spill back to disk
/// instead of all staying resident.
pub fn load_store_configured(
    dir: &Path,
    policy: RecoveryPolicy,
    config: &StoreConfig,
) -> Result<(TxStore, RecoveryReport)> {
    match read_meta(dir) {
        Ok(meta) => load_blocks(dir, &meta, policy, config),
        Err(e) => match policy {
            RecoveryPolicy::Strict => Err(e),
            RecoveryPolicy::SalvagePrefix => reconstruct_store(dir, e, config),
        },
    }
}

/// Reads and validates the manifest at the store level: JSON shape,
/// format version, item universe, and the `meta_crc` self-checksum.
/// Per-entry validation (id ordering, intervals) happens while loading
/// so salvage can truncate at the offending entry.
fn read_meta(dir: &Path) -> Result<Meta> {
    let path = dir.join(META_FILE);
    let bytes = std::fs::read(&path)?;
    let meta: Meta =
        serde_json::from_slice(&bytes).map_err(|e| corrupt(&path, format!("invalid JSON: {e}")))?;
    if meta.format_version != STORE_FORMAT_VERSION {
        return Err(corrupt(
            &path,
            format!(
                "unsupported store format version {} (this build reads {STORE_FORMAT_VERSION})",
                meta.format_version
            ),
        ));
    }
    if meta.n_items == 0 {
        return Err(corrupt(&path, "item universe of size 0"));
    }
    match meta.meta_crc {
        None => return Err(corrupt(&path, "missing meta_crc self-checksum")),
        Some(recorded) => {
            let actual = meta_checksum(&meta)?;
            if recorded != actual {
                return Err(DemonError::ChecksumMismatch {
                    file: path.display().to_string(),
                    expected: recorded,
                    actual,
                });
            }
        }
    }
    Ok(meta)
}

/// Validates one manifest entry against its predecessor.
fn check_entry(dir: &Path, prev_id: Option<u64>, bm: &BlockMeta, index: usize) -> Result<()> {
    let meta_path = dir.join(META_FILE);
    if let Some(prev) = prev_id {
        if bm.id <= prev {
            return Err(corrupt(
                &meta_path,
                format!(
                    "block ids must be strictly ascending: entry {index} has id {} after {prev}",
                    bm.id
                ),
            ));
        }
    }
    if let Some((start, end)) = bm.interval {
        // Intervals are half-open, so start == end is as invalid as an
        // inverted one (and BlockInterval::new would refuse it).
        if start >= end {
            return Err(corrupt(
                &meta_path,
                format!("entry {index} (block {}): interval start {start} not before end {end}", bm.id),
            ));
        }
    }
    Ok(())
}

fn load_blocks(
    dir: &Path,
    meta: &Meta,
    policy: RecoveryPolicy,
    config: &StoreConfig,
) -> Result<(TxStore, RecoveryReport)> {
    let mut store = TxStore::with_config(meta.n_items, config)?;
    let mut report = RecoveryReport::default();
    let mut prev_id = None;
    let mut failure: Option<(usize, DemonError)> = None;
    for (index, bm) in meta.blocks.iter().enumerate() {
        let loaded = check_entry(dir, prev_id, bm, index)
            .and_then(|()| load_one_block(dir, bm, meta.n_items, &mut store));
        match loaded {
            Ok(()) => {
                prev_id = Some(bm.id);
                report.loaded_blocks.push(bm.id);
            }
            Err(e) => match policy {
                RecoveryPolicy::Strict => return Err(e),
                RecoveryPolicy::SalvagePrefix => {
                    failure = Some((index, e));
                    break;
                }
            },
        }
    }
    if let Some((index, e)) = failure {
        salvage_tail(dir, meta, index, &e, &mut report)?;
    }
    // Salvage always sweeps crash litter, even when every block loaded.
    if policy == RecoveryPolicy::SalvagePrefix {
        remove_stray_tmp(dir, &mut report);
    }
    Ok((store, report))
}

/// Decodes both files of one block and — only when everything validated —
/// inserts the block and its materialized pair lists into `store`.
fn load_one_block(dir: &Path, bm: &BlockMeta, n_items: u32, store: &mut TxStore) -> Result<()> {
    let txs_file = txs_path(dir, bm.id);
    let (txs_payload, txs_crc) = read_block_frame(&txs_file, FrameClass::TRANSACTIONS)?;
    check_manifest_crc(bm.txs_crc, txs_crc, &txs_file)?;
    let mut block = decode_txs(&txs_payload, BlockId(bm.id), Some(bm.n_transactions), n_items)
        .map_err(|e| in_file(&txs_file, e))?;
    if let Some((start, end)) = bm.interval {
        block = Block::with_interval(
            block.id(),
            demon_types::BlockInterval::new(
                demon_types::Timestamp(start),
                demon_types::Timestamp(end),
            ),
            block.into_records(),
        );
    }

    let tid_file = tid_path(dir, bm.id);
    let (tid_payload, tid_crc) = read_block_frame(&tid_file, FrameClass::TIDLISTS)?;
    check_manifest_crc(bm.tid_crc, tid_crc, &tid_file)?;
    // Reapply materialized pair lists (item lists are rebuilt by
    // add_block; pairs carry the ECUT+ investment across restarts).
    let pairs = decode_pairs(&tid_payload, n_items).map_err(|e| in_file(&tid_file, e))?;

    store.add_block_with_pairs(block, pairs);
    Ok(())
}

/// Quarantines the block that failed, drops it and everything after it
/// from the manifest, and rewrites the truncated manifest atomically.
fn salvage_tail(
    dir: &Path,
    meta: &Meta,
    index: usize,
    cause: &DemonError,
    report: &mut RecoveryReport,
) -> Result<()> {
    report.first_error = Some(cause.to_string());
    if let Some(bad) = meta.blocks.get(index) {
        quarantine_block_files(dir, bad.id, report)?;
    }
    for bm in &meta.blocks[index..] {
        report.dropped_blocks.push(bm.id);
    }
    let mut truncated = Meta {
        format_version: STORE_FORMAT_VERSION,
        n_items: meta.n_items,
        blocks: meta.blocks[..index].to_vec(),
        meta_crc: None,
    };
    write_meta(dir, &mut truncated)?;
    Ok(())
}

fn quarantine_block_files(dir: &Path, id: u64, report: &mut RecoveryReport) -> Result<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&qdir)?;
    for path in [txs_path(dir, id), tid_path(dir, id)] {
        if let Some(name) = path.file_name() {
            let dest = qdir.join(name);
            if path.exists() && std::fs::rename(&path, &dest).is_ok() {
                report.quarantined.push(dest);
            }
        }
    }
    Ok(())
}

fn remove_stray_tmp(dir: &Path, report: &mut RecoveryReport) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("tmp"));
        if is_tmp && std::fs::remove_file(&path).is_ok() {
            report.removed_tmp.push(path);
        }
    }
}

/// Rebuilds a store whose manifest was destroyed: scans for
/// checksum-valid block files, keeps the longest contiguous run starting
/// at the smallest id, and writes a fresh manifest. Intervals (stored
/// only in the manifest) are lost; the report records that.
fn reconstruct_store(
    dir: &Path,
    cause: DemonError,
    config: &StoreConfig,
) -> Result<(TxStore, RecoveryReport)> {
    // A store directory that simply does not exist is an I/O error, not
    // a salvageable corruption.
    if !dir.is_dir() {
        return Err(cause);
    }
    let mut report = RecoveryReport {
        first_error: Some(cause.to_string()),
        ..RecoveryReport::default()
    };

    let meta_path = dir.join(META_FILE);
    if meta_path.exists() {
        let qdir = dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&qdir)?;
        let dest = qdir.join(META_FILE);
        if std::fs::rename(&meta_path, &dest).is_ok() {
            report.quarantined.push(dest);
        }
    }

    // Candidate block ids: every block_<id>.txs in the directory.
    let mut candidates = BTreeSet::new();
    for entry in std::fs::read_dir(dir)?.flatten() {
        if let Some(name) = entry.path().file_name().and_then(|n| n.to_str()) {
            if let Some(id) = name
                .strip_prefix("block_")
                .and_then(|r| r.strip_suffix(".txs"))
                .and_then(|r| r.parse::<u64>().ok())
            {
                candidates.insert(id);
            }
        }
    }

    // The item universe lives in the manifest; recover it from the first
    // valid TID file (its payload opens with the universe size).
    let mut n_items: Option<u32> = None;
    for &id in &candidates {
        if let Ok((payload, _)) = durable::read_framed(&tid_path(dir, id), FrameClass::TIDLISTS) {
            if let Ok((n, _)) = get_varint(&payload) {
                if n > 0 && n <= u64::from(u32::MAX) {
                    n_items = Some(n as u32);
                    break;
                }
            }
        }
    }
    let Some(n_items) = n_items else {
        // Nothing recoverable: an empty-but-loadable store.
        let mut empty = Meta {
            format_version: STORE_FORMAT_VERSION,
            n_items: 1,
            blocks: Vec::new(),
            meta_crc: None,
        };
        write_meta(dir, &mut empty)?;
        report.dropped_blocks.extend(candidates.iter().copied());
        remove_stray_tmp(dir, &mut report);
        return Ok((TxStore::new(1), report));
    };

    let mut store = TxStore::with_config(n_items, config)?;
    let mut meta = Meta {
        format_version: STORE_FORMAT_VERSION,
        n_items,
        blocks: Vec::new(),
        meta_crc: None,
    };
    let mut expected_next = candidates.iter().next().copied();
    for &id in &candidates {
        let contiguous = expected_next == Some(id);
        let recovered = contiguous && recover_block(dir, id, n_items, &mut store, &mut meta).is_ok();
        if recovered {
            report.loaded_blocks.push(id);
            expected_next = Some(id + 1);
        } else {
            report.dropped_blocks.push(id);
            if contiguous {
                // First defect ends the prefix; quarantine its files.
                quarantine_block_files(dir, id, &mut report)?;
                expected_next = None;
            }
        }
    }
    report.intervals_lost = !report.loaded_blocks.is_empty();
    write_meta(dir, &mut meta)?;
    remove_stray_tmp(dir, &mut report);
    Ok((store, report))
}

/// Loads one block during manifest reconstruction, trusting the frame
/// checksums and the embedded transaction count.
fn recover_block(
    dir: &Path,
    id: u64,
    n_items: u32,
    store: &mut TxStore,
    meta: &mut Meta,
) -> Result<()> {
    let txs_file = txs_path(dir, id);
    let (txs_payload, txs_crc) = read_block_frame(&txs_file, FrameClass::TRANSACTIONS)?;
    let block = decode_txs(&txs_payload, BlockId(id), None, n_items)
        .map_err(|e| in_file(&txs_file, e))?;
    let tid_file = tid_path(dir, id);
    let (tid_payload, tid_crc) = read_block_frame(&tid_file, FrameClass::TIDLISTS)?;
    let pairs = decode_pairs(&tid_payload, n_items).map_err(|e| in_file(&tid_file, e))?;
    meta.blocks.push(BlockMeta {
        id,
        n_transactions: block.len() as u64,
        interval: None,
        txs_crc: Some(txs_crc),
        tid_crc: Some(tid_crc),
    });
    store.add_block_with_pairs(block, pairs);
    Ok(())
}

/// Read-only fsck: walks the manifest, re-validates every frame,
/// checksum and decode, and reports **all** damage (instead of stopping
/// at the first defect like a `Strict` load). `Err` only when the
/// directory itself is unreadable.
pub fn verify_store(dir: &Path) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();
    for entry in std::fs::read_dir(dir)?.flatten() {
        let path = entry.path();
        if path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("tmp"))
        {
            report.stray_tmp.push(path);
        }
    }
    let qdir = dir.join(QUARANTINE_DIR);
    if let Ok(entries) = std::fs::read_dir(&qdir) {
        report.quarantined_files = entries.flatten().count();
    }

    let meta_path = dir.join(META_FILE);
    let meta = match read_meta(dir) {
        Ok(meta) => {
            report.checked.push(meta_path.clone());
            meta
        }
        Err(e) => {
            report.damaged.push((meta_path, e.to_string()));
            return Ok(report);
        }
    };

    let mut scratch = TxStore::new(meta.n_items);
    let mut prev_id = None;
    for (index, bm) in meta.blocks.iter().enumerate() {
        if let Err(e) = check_entry(dir, prev_id, bm, index) {
            report.damaged.push((meta_path.clone(), e.to_string()));
        }
        prev_id = Some(bm.id);
        match load_one_block(dir, bm, meta.n_items, &mut scratch) {
            Ok(()) => {
                report.checked.push(txs_path(dir, bm.id));
                report.checked.push(tid_path(dir, bm.id));
            }
            Err(e) => {
                let file = match &e {
                    DemonError::Corrupt { file, .. }
                    | DemonError::ChecksumMismatch { file, .. } => PathBuf::from(file),
                    _ => txs_path(dir, bm.id),
                };
                report.damaged.push((file, e.to_string()));
            }
        }
    }
    Ok(report)
}

/// Encodes one block's transactions in the store's `.txs` payload format
/// (varint TIDs + delta-encoded items, without the frame header). This
/// is also the wire encoding `demon-serve` ships blocks in, so a block
/// travels the socket in exactly the bytes it persists as.
pub fn encode_block_txs(block: &TxBlock) -> Vec<u8> {
    encode_txs(block)
}

/// Decodes a [`encode_block_txs`] payload back into a block, validating
/// every varint and item id against the `n_items` universe. The inverse
/// wire decoder for `demon-serve`; corruption is a typed error, never a
/// panic (the caller has already CRC-checked the enclosing frame).
pub fn decode_block_txs(bytes: &[u8], id: BlockId, n_items: u32) -> Result<TxBlock> {
    decode_txs(bytes, id, None, n_items)
}

pub(crate) fn encode_txs(block: &TxBlock) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_varint(&mut buf, block.len() as u64);
    for tx in block.records() {
        put_varint(&mut buf, tx.tid().value());
        put_varint(&mut buf, tx.len() as u64);
        let mut prev = 0u64;
        for item in tx.items() {
            // Items are sorted and unique: delta-1 encoding.
            let v = u64::from(item.id());
            put_varint(&mut buf, v - prev);
            prev = v + 1;
        }
    }
    buf.to_vec()
}

/// A checked varint read that reports the offset of any defect.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    if *pos >= bytes.len() {
        return Err(DemonError::Serde(format!(
            "unexpected end of payload at offset {pos}"
        )));
    }
    let (v, read) = get_varint(&bytes[*pos..])
        .map_err(|e| DemonError::Serde(format!("{e} at offset {pos}")))?;
    *pos += read;
    Ok(v)
}

/// Reads a count and sanity-checks it against the bytes remaining, so a
/// corrupt length cannot drive a pathological allocation. Each counted
/// element occupies at least `min_bytes` bytes of payload.
fn read_count(bytes: &[u8], pos: &mut usize, min_bytes: usize, what: &str) -> Result<usize> {
    let at = *pos;
    let n = read_varint(bytes, pos)?;
    let remaining = (bytes.len() - *pos) as u64;
    let need = n.saturating_mul(min_bytes.max(1) as u64);
    if need > remaining {
        return Err(DemonError::Serde(format!(
            "{what} count {n} at offset {at} needs {need} bytes, only {remaining} remain"
        )));
    }
    usize::try_from(n).map_err(|_| DemonError::Serde(format!("{what} count {n} overflows usize")))
}

/// Decodes a `.txs` payload. `expect` cross-checks the manifest's
/// transaction count when loading normally; `None` trusts the embedded
/// count (manifest reconstruction, where the frame checksum already
/// vouched for the bytes).
pub(crate) fn decode_txs(
    bytes: &[u8],
    id: BlockId,
    expect: Option<u64>,
    n_items: u32,
) -> Result<TxBlock> {
    let mut pos = 0usize;
    let n = read_count(bytes, &mut pos, 2, "transaction")?;
    if let Some(expect) = expect {
        if n as u64 != expect {
            return Err(DemonError::Serde(format!(
                "block {id}: manifest says {expect} transactions, file has {n}"
            )));
        }
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let tid = Tid(read_varint(bytes, &mut pos)?);
        let len = read_count(bytes, &mut pos, 1, "item")?;
        let mut items = Vec::with_capacity(len);
        let mut prev = 0u64;
        for _ in 0..len {
            let at = pos;
            let gap = read_varint(bytes, &mut pos)?;
            let v = prev.checked_add(gap).ok_or_else(|| {
                DemonError::Serde(format!("item delta overflow at offset {at}"))
            })?;
            if v >= u64::from(n_items) {
                return Err(DemonError::Serde(format!(
                    "item id {v} at offset {at} outside the {n_items}-item universe"
                )));
            }
            items.push(Item(v as u32));
            prev = v + 1;
        }
        records.push(Transaction::from_sorted(tid, items));
    }
    if pos != bytes.len() {
        return Err(DemonError::Serde(format!(
            "{} trailing bytes after the last transaction (offset {pos})",
            bytes.len() - pos
        )));
    }
    Ok(Block::new(id, records))
}

pub(crate) fn encode_lists(lists: &BlockTidLists, n_items: u32) -> Vec<u8> {
    let mut buf = BytesMut::new();
    // Item lists, in item order.
    put_varint(&mut buf, u64::from(n_items));
    for i in 0..n_items {
        let list = lists.item_list(Item(i));
        put_varint(&mut buf, list.len() as u64);
        let mut prev = 0u64;
        for t in list {
            put_varint(&mut buf, t.0 - prev);
            prev = t.0;
        }
    }
    // Pair lists.
    let pairs: Vec<(Item, Item)> = lists.materialized_pairs().collect();
    put_varint(&mut buf, pairs.len() as u64);
    for (a, b) in pairs {
        let list = lists.pair_list(a, b).unwrap_or(&[]);
        put_varint(&mut buf, u64::from(a.id()));
        put_varint(&mut buf, u64::from(b.id()));
        put_varint(&mut buf, list.len() as u64);
        let mut prev = 0u64;
        for t in list {
            put_varint(&mut buf, t.0 - prev);
            prev = t.0;
        }
    }
    buf.to_vec()
}

/// Decodes the pair-list section of a `.tid` payload (the item-list
/// section is skipped — item lists are rebuilt by `add_block`). Pure:
/// nothing is applied to any store until the whole payload validated.
pub(crate) fn decode_pairs(bytes: &[u8], n_items: u32) -> Result<Vec<(Item, Item, Vec<Tid>)>> {
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos)?;
    if n != u64::from(n_items) {
        return Err(DemonError::Serde(format!(
            "tid file item universe {n} ≠ store universe {n_items}"
        )));
    }
    for _ in 0..n_items {
        let len = read_count(bytes, &mut pos, 1, "TID")?;
        for _ in 0..len {
            read_varint(bytes, &mut pos)?;
        }
    }
    let n_pairs = read_count(bytes, &mut pos, 3, "pair")?;
    let mut out = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let at = pos;
        let a = read_varint(bytes, &mut pos)?;
        let b = read_varint(bytes, &mut pos)?;
        if a >= b || b >= u64::from(n_items) {
            return Err(DemonError::Serde(format!(
                "invalid pair ({a}, {b}) at offset {at} for a {n_items}-item universe"
            )));
        }
        let len = read_count(bytes, &mut pos, 1, "pair TID")?;
        let mut list = Vec::with_capacity(len);
        let mut prev = 0u64;
        for k in 0..len {
            let at = pos;
            let gap = read_varint(bytes, &mut pos)?;
            if k > 0 && gap == 0 {
                return Err(DemonError::Serde(format!(
                    "pair TID-list not strictly increasing at offset {at}"
                )));
            }
            prev = prev.checked_add(gap).ok_or_else(|| {
                DemonError::Serde(format!("pair TID delta overflow at offset {at}"))
            })?;
            list.push(Tid(prev));
        }
        out.push((Item(a as u32), Item(b as u32), list));
    }
    if pos != bytes.len() {
        return Err(DemonError::Serde(format!(
            "{} trailing bytes after the last pair list (offset {pos})",
            bytes.len() - pos
        )));
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use demon_types::MinSupport;

    fn sample_store() -> TxStore {
        let mut store = TxStore::new(6);
        let mk = |id: u64, base: u64, txs: &[&[u32]]| {
            TxBlock::new(
                BlockId(id),
                txs.iter()
                    .enumerate()
                    .map(|(i, items)| {
                        Transaction::new(
                            Tid(base + i as u64),
                            items.iter().copied().map(Item).collect(),
                        )
                    })
                    .collect(),
            )
        };
        store.add_block(mk(1, 1, &[&[0, 1, 2], &[0, 1], &[3], &[1, 4]]));
        store.add_block(mk(2, 100, &[&[0, 1], &[2, 5], &[0, 1, 5]]));
        store.materialize_pairs(BlockId(1), &[(Item(0), Item(1))], None);
        store
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("demon-persist-{name}-{}", std::process::id()))
    }

    fn is_corruption(e: &DemonError) -> bool {
        matches!(
            e,
            DemonError::Corrupt { .. } | DemonError::ChecksumMismatch { .. }
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let dir = tmp("roundtrip");
        save_store(&store, &dir).unwrap();
        let back = load_store(&dir).unwrap();
        assert_eq!(back.n_items(), 6);
        assert_eq!(back.block_ids(), store.block_ids());
        for &id in store.block_ids() {
            let (a, b) = (store.block(id).unwrap(), back.block(id).unwrap());
            assert_eq!(a.records(), b.records());
            let (la, lb) = (
                store.tidlists().block(id).unwrap(),
                back.tidlists().block(id).unwrap(),
            );
            for i in 0..6u32 {
                assert_eq!(la.item_list(Item(i)), lb.item_list(Item(i)));
            }
        }
        // Pair lists survive.
        assert_eq!(
            back.tidlists()
                .block(BlockId(1))
                .unwrap()
                .pair_list(Item(0), Item(1)),
            store
                .tidlists()
                .block(BlockId(1))
                .unwrap()
                .pair_list(Item(0), Item(1))
        );
        // A clean store verifies cleanly and salvage-loads without changes.
        assert!(verify_store(&dir).unwrap().is_clean());
        let (_, report) = load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_save_replaces_and_leaves_no_partial_store() {
        let store = sample_store();
        let dir = tmp("atomic-save");
        std::fs::create_dir_all(dir.parent().unwrap()).ok();
        // Fresh target: the store lands whole and Strict-loadable.
        save_store_atomic(&store, &dir).unwrap();
        assert!(verify_store(&dir).unwrap().is_clean());
        assert!(!durable::tmp_path(&dir).exists(), "tmp dir must not linger");
        // Existing target: replaced atomically, old copy gone.
        save_store_atomic(&store, &dir).unwrap();
        assert!(verify_store(&dir).unwrap().is_clean());
        assert!(!dir.with_extension("old").exists(), "old dir must not linger");
        assert_eq!(load_store(&dir).unwrap().len(), 2);

        // A failing save leaves no partial directory behind: point the
        // temp sibling at a path whose parent cannot be created (a file
        // stands in the way).
        let blocked = dir.join("meta.json").join("store");
        let err = save_store_atomic(&store, &blocked).unwrap_err();
        assert!(matches!(err, DemonError::Io(_)), "{err}");
        assert!(!blocked.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reloaded_store_mines_identically() {
        let store = sample_store();
        let dir = tmp("mine");
        save_store(&store, &dir).unwrap();
        let back = load_store(&dir).unwrap();
        let k = MinSupport::new(0.2).unwrap();
        let a = crate::FrequentItemsets::mine_from(&store, store.block_ids(), k).unwrap();
        let b = crate::FrequentItemsets::mine_from(&back, back.block_ids(), k).unwrap();
        assert_eq!(a.frequent(), b.frequent());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn intervals_survive_roundtrip() {
        use demon_types::{BlockInterval, Timestamp};
        let mut store = TxStore::new(2);
        let iv = BlockInterval::new(Timestamp(100), Timestamp(200));
        store.add_block(TxBlock::with_interval(
            BlockId(1),
            iv,
            vec![Transaction::new(Tid(1), vec![Item(0)])],
        ));
        let dir = tmp("interval");
        save_store(&store, &dir).unwrap();
        let back = load_store(&dir).unwrap();
        assert_eq!(back.block(BlockId(1)).unwrap().interval(), Some(iv));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_errors() {
        let err = load_store(Path::new("/nonexistent/demon-store")).unwrap_err();
        assert!(matches!(err, DemonError::Io(_)));
        // Salvage cannot conjure a store out of a missing directory either.
        assert!(load_store_with(
            Path::new("/nonexistent/demon-store"),
            RecoveryPolicy::SalvagePrefix
        )
        .is_err());
    }

    #[test]
    fn corrupt_meta_errors() {
        let dir = tmp("badmeta");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("meta.json"), b"{not json").unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(is_corruption(&err), "got {err}");
        assert!(err.to_string().contains("meta.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn semantic_meta_edit_is_caught_by_self_checksum() {
        let store = sample_store();
        let dir = tmp("metaedit");
        save_store(&store, &dir).unwrap();
        // Bump a transaction count without updating meta_crc — valid
        // JSON, wrong content.
        let text = std::fs::read_to_string(dir.join("meta.json")).unwrap();
        let edited = text.replacen("\"n_transactions\": 4", "\"n_transactions\": 5", 1);
        assert_ne!(text, edited, "fixture must contain the count");
        std::fs::write(dir.join("meta.json"), edited).unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::ChecksumMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_block_file_errors() {
        let store = sample_store();
        let dir = tmp("trunc");
        save_store(&store, &dir).unwrap();
        let path = dir.join("block_1.txs");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(is_corruption(&err), "got {err}");
        assert!(err.to_string().contains("block_1.txs"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_mismatch_errors() {
        let store = sample_store();
        let dir = tmp("mismatch");
        save_store(&store, &dir).unwrap();
        // Swap the two block data files: checksums disagree with the
        // manifest even though each file is internally consistent.
        let a = std::fs::read(dir.join("block_1.txs")).unwrap();
        let b = std::fs::read(dir.join("block_2.txs")).unwrap();
        std::fs::write(dir.join("block_1.txs"), b).unwrap();
        std::fs::write(dir.join("block_2.txs"), a).unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(is_corruption(&err), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_block_file_is_corruption_naming_the_file() {
        let store = sample_store();
        let dir = tmp("missingblock");
        save_store(&store, &dir).unwrap();
        std::fs::remove_file(dir.join("block_2.tid")).unwrap();
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("block_2.tid"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvage_keeps_longest_prefix_and_quarantines() {
        let store = sample_store();
        let dir = tmp("salvage");
        save_store(&store, &dir).unwrap();
        // Damage block 2's tid file.
        let path = dir.join("block_2.tid");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (salvaged, report) =
            load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
        assert_eq!(salvaged.block_ids(), vec![BlockId(1)]);
        assert_eq!(report.loaded_blocks, vec![1]);
        assert_eq!(report.dropped_blocks, vec![2]);
        assert!(!report.is_clean());
        assert!(report.first_error.is_some());
        // Both files of the bad block land in quarantine.
        assert!(dir.join("quarantine").join("block_2.tid").exists());
        assert!(dir.join("quarantine").join("block_2.txs").exists());
        // The rewritten store is clean: strict load and fsck succeed.
        let back = load_store(&dir).unwrap();
        assert_eq!(back.block_ids(), vec![BlockId(1)]);
        assert!(verify_store(&dir).unwrap().is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvage_reconstructs_when_meta_is_destroyed() {
        let store = sample_store();
        let dir = tmp("reconstruct");
        save_store(&store, &dir).unwrap();
        std::fs::write(dir.join("meta.json"), b"\xFF\xFE garbage").unwrap();

        let (salvaged, report) =
            load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
        assert_eq!(salvaged.block_ids(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(salvaged.n_items(), 6);
        assert!(report.intervals_lost);
        // Pair lists survive reconstruction (they live in the tid files).
        assert!(salvaged
            .tidlists()
            .block(BlockId(1))
            .unwrap()
            .pair_list(Item(0), Item(1))
            .is_some());
        // And the rewritten manifest loads strictly.
        let back = load_store(&dir).unwrap();
        assert_eq!(back.block_ids(), vec![BlockId(1), BlockId(2)]);
        assert!(verify_store(&dir).unwrap().is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvage_of_missing_meta_with_no_blocks_yields_empty_store() {
        let dir = tmp("emptysalvage");
        std::fs::create_dir_all(&dir).unwrap();
        let (store, report) =
            load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
        assert!(store.is_empty());
        assert!(report.loaded_blocks.is_empty());
        // The fresh manifest loads strictly.
        assert!(load_store(&dir).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn meta_with_blocks(dir: &Path, edit: impl FnOnce(&mut Meta)) {
        let bytes = std::fs::read(dir.join("meta.json")).unwrap();
        let mut meta: Meta = serde_json::from_slice(&bytes).unwrap();
        edit(&mut meta);
        // Re-stamp the self-checksum so only the semantic defect remains.
        write_meta(dir, &mut meta).unwrap();
    }

    #[test]
    fn duplicate_block_ids_are_corrupt() {
        let store = sample_store();
        let dir = tmp("dupids");
        save_store(&store, &dir).unwrap();
        meta_with_blocks(&dir, |m| m.blocks[1].id = m.blocks[0].id);
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("ascending"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_block_ids_are_corrupt() {
        let store = sample_store();
        let dir = tmp("orderids");
        save_store(&store, &dir).unwrap();
        meta_with_blocks(&dir, |m| m.blocks.reverse());
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inverted_interval_is_corrupt() {
        let store = sample_store();
        let dir = tmp("interval-bad");
        save_store(&store, &dir).unwrap();
        meta_with_blocks(&dir, |m| m.blocks[0].interval = Some((200, 100)));
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("interval"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_transaction_count_is_corrupt() {
        let store = sample_store();
        let dir = tmp("txcount");
        save_store(&store, &dir).unwrap();
        meta_with_blocks(&dir, |m| {
            m.blocks[0].n_transactions += 1;
            // Keep the file checksums intact; only the count lies.
        });
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_item_universe_is_corrupt() {
        let store = sample_store();
        let dir = tmp("zeroitems");
        save_store(&store, &dir).unwrap();
        meta_with_blocks(&dir, |m| m.n_items = 0);
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("universe"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsupported_format_version_is_corrupt() {
        let store = sample_store();
        let dir = tmp("badversion");
        save_store(&store, &dir).unwrap();
        meta_with_blocks(&dir, |m| m.format_version = 7);
        let err = load_store(&dir).unwrap_err();
        assert!(matches!(err, DemonError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stray_tmp_files_are_ignored_by_strict_and_removed_by_salvage() {
        let store = sample_store();
        let dir = tmp("straytmp");
        save_store(&store, &dir).unwrap();
        std::fs::write(dir.join("block_9.txs.tmp"), b"half a write").unwrap();
        // Strict load ignores the residue.
        assert!(load_store(&dir).is_ok());
        let fsck = verify_store(&dir).unwrap();
        assert!(fsck.is_clean());
        assert_eq!(fsck.stray_tmp.len(), 1);
        // Damage a block so salvage runs; the tmp residue is cleaned.
        std::fs::remove_file(dir.join("block_2.txs")).unwrap();
        let (_, report) = load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
        assert_eq!(report.removed_tmp.len(), 1);
        assert!(!dir.join("block_9.txs.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_all_damage() {
        let store = sample_store();
        let dir = tmp("fsck");
        save_store(&store, &dir).unwrap();
        // Damage both blocks in different ways.
        let p1 = dir.join("block_1.txs");
        let bytes = std::fs::read(&p1).unwrap();
        std::fs::write(&p1, &bytes[..bytes.len() - 1]).unwrap();
        std::fs::remove_file(dir.join("block_2.tid")).unwrap();
        let report = verify_store(&dir).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.damaged.len(), 2, "{report:?}");
        let text = format!("{report:?}");
        assert!(text.contains("block_1.txs"));
        assert!(text.contains("block_2.tid"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
