//! The hash tree of Agrawal et al. (AMS+96) — the alternative candidate
//! counting structure the paper mentions in footnote 7 ("A hash tree has
//! also been proposed for the same purpose").
//!
//! Interior nodes hash the next transaction item into a fixed fan-out of
//! buckets; leaves hold up to `leaf_capacity` candidates and are checked
//! by direct subset tests, splitting into interior nodes when they
//! overflow. BORDERS uses the prefix tree (PT-Scan); this implementation
//! exists so the choice is measurable — `counting` benches compare both.

use demon_types::{Item, ItemSet, TxBlock};

/// Hash fan-out of interior nodes.
const FANOUT: usize = 64;

enum Node {
    Interior {
        /// One child per hash bucket (item id mod FANOUT at this depth).
        children: Vec<Option<Box<Node>>>,
    },
    Leaf {
        /// Candidate indices stored at this leaf.
        members: Vec<u32>,
    },
}

/// A hash tree over a fixed candidate set, accumulating one support count
/// per candidate.
pub struct HashTree {
    root: Node,
    candidates: Vec<ItemSet>,
    counts: Vec<u64>,
    leaf_capacity: usize,
    max_len: usize,
}

impl HashTree {
    /// Builds the tree over `candidates` with the default leaf capacity.
    pub fn build(candidates: &[ItemSet]) -> Self {
        Self::with_capacity(candidates, 8)
    }

    /// Builds with an explicit leaf capacity (≥ 1).
    pub fn with_capacity(candidates: &[ItemSet], leaf_capacity: usize) -> Self {
        assert!(leaf_capacity >= 1, "leaf capacity must be positive");
        let max_len = candidates.iter().map(ItemSet::len).max().unwrap_or(0);
        let mut tree = HashTree {
            root: Node::Leaf {
                members: Vec::new(),
            },
            candidates: candidates.to_vec(),
            counts: vec![0; candidates.len()],
            leaf_capacity,
            max_len,
        };
        for ci in 0..tree.candidates.len() {
            let cand = tree.candidates[ci].clone();
            insert(
                &mut tree.root,
                &tree.candidates,
                ci as u32,
                cand.items(),
                0,
                tree.leaf_capacity,
            );
        }
        tree
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Counts one transaction (items sorted ascending).
    pub fn add_transaction(&mut self, items: &[Item]) {
        if self.candidates.is_empty() || self.max_len == 0 {
            return;
        }
        // Collect leaves reachable via increasing item paths, then subset-
        // test their members. `visited` de-duplicates leaves reachable via
        // several paths.
        let mut hits: Vec<u32> = Vec::new();
        descend(&self.root, items, &mut hits);
        hits.sort_unstable();
        hits.dedup();
        for ci in hits {
            let cand = &self.candidates[ci as usize];
            if contains_sorted(items, cand.items()) {
                self.counts[ci as usize] += 1;
            }
        }
    }

    /// Counts every transaction of a block.
    pub fn count_block(&mut self, block: &TxBlock) {
        for tx in block.records() {
            self.add_transaction(tx.items());
        }
    }

    /// The accumulated counts, in candidate order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the tree, yielding the counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

fn bucket(item: Item) -> usize {
    item.index() % FANOUT
}

fn insert(
    node: &mut Node,
    candidates: &[ItemSet],
    ci: u32,
    path: &[Item],
    depth: usize,
    leaf_capacity: usize,
) {
    match node {
        Node::Leaf { members } => {
            members.push(ci);
            // Split when over capacity and the candidates still have items
            // to hash at this depth.
            if members.len() > leaf_capacity
                && members
                    .iter()
                    .any(|&m| candidates[m as usize].len() > depth)
            {
                let old = std::mem::take(members);
                let mut children: Vec<Option<Box<Node>>> = (0..FANOUT).map(|_| None).collect();
                let mut stuck: Vec<u32> = Vec::new();
                for m in old {
                    let mpath = candidates[m as usize].items();
                    if depth < mpath.len() {
                        let b = bucket(mpath[depth]);
                        let child = children[b].get_or_insert_with(|| {
                            Box::new(Node::Leaf {
                                members: Vec::new(),
                            })
                        });
                        insert(child, candidates, m, mpath, depth + 1, leaf_capacity);
                    } else {
                        // Shorter candidates stay at this interior node via
                        // a dedicated overflow leaf in bucket of their last
                        // item — simplest: keep them in every probe path by
                        // storing them in a `stuck` side list attached to
                        // bucket 0 … instead we simply keep them in a leaf
                        // that interior probing always visits (see descend).
                        stuck.push(m);
                    }
                }
                if !stuck.is_empty() {
                    // Re-insert the exhausted candidates into an always-
                    // visited residual leaf: we model it as an extra bucket.
                    children.push(Some(Box::new(Node::Leaf { members: stuck })));
                } else {
                    children.push(None);
                }
                *node = Node::Interior { children };
            }
        }
        Node::Interior { children } => {
            if depth < path.len() {
                let b = bucket(path[depth]);
                let child = children[b].get_or_insert_with(|| {
                    Box::new(Node::Leaf {
                        members: Vec::new(),
                    })
                });
                insert(child, candidates, ci, path, depth + 1, leaf_capacity);
            } else {
                // Candidate exhausted: residual leaf (index FANOUT).
                let residual = children[FANOUT].get_or_insert_with(|| {
                    Box::new(Node::Leaf {
                        members: Vec::new(),
                    })
                });
                if let Node::Leaf { members } = residual.as_mut() {
                    members.push(ci);
                } else {
                    unreachable!("residual bucket is always a leaf");
                }
            }
        }
    }
}

/// Classic hash-tree probing: at an interior node, hash every remaining
/// transaction item and descend; at a leaf, report all members.
fn descend(node: &Node, items: &[Item], hits: &mut Vec<u32>) {
    match node {
        Node::Leaf { members } => hits.extend_from_slice(members),
        Node::Interior { children } => {
            // The residual leaf (exhausted candidates) is always visited.
            if let Some(res) = children.get(FANOUT).and_then(|c| c.as_ref()) {
                descend(res, items, hits);
            }
            for (pos, &item) in items.iter().enumerate() {
                if let Some(child) = children[bucket(item)].as_ref() {
                    descend(child, &items[pos + 1..], hits);
                }
            }
        }
    }
}

/// Sorted subset test.
fn contains_sorted(hay: &[Item], needle: &[Item]) -> bool {
    let mut h = hay.iter();
    'outer: for want in needle {
        for have in h.by_ref() {
            match have.cmp(want) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{BlockId, Tid, Transaction};

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids)
    }

    fn tx(tid: u64, ids: &[u32]) -> Transaction {
        Transaction::new(Tid(tid), ids.iter().copied().map(Item).collect())
    }

    #[test]
    fn counts_simple_candidates() {
        let cands = vec![set(&[1]), set(&[1, 2]), set(&[2, 3]), set(&[4])];
        let mut t = HashTree::build(&cands);
        t.add_transaction(tx(1, &[1, 2, 3]).items());
        t.add_transaction(tx(2, &[2, 3]).items());
        t.add_transaction(tx(3, &[1, 4]).items());
        assert_eq!(t.counts(), &[2, 1, 2, 1]);
    }

    #[test]
    fn splitting_leaves_still_count_correctly() {
        // Force splits with a tiny leaf capacity and many candidates.
        let cands: Vec<ItemSet> = (0..40u32)
            .map(|i| set(&[i % 10, 10 + (i % 7), 20 + (i % 5)]))
            .collect();
        let mut deduped = cands.clone();
        deduped.sort();
        deduped.dedup();
        let mut t = HashTree::with_capacity(&deduped, 2);
        let txs: Vec<Transaction> = (0..100)
            .map(|i| {
                tx(
                    i,
                    &[
                        (i % 10) as u32,
                        10 + (i % 7) as u32,
                        20 + (i % 5) as u32,
                        30 + (i % 3) as u32,
                    ],
                )
            })
            .collect();
        for txn in &txs {
            t.add_transaction(txn.items());
        }
        for (ci, cand) in deduped.iter().enumerate() {
            let naive = txs.iter().filter(|t| t.contains_all(cand.items())).count() as u64;
            assert_eq!(t.counts()[ci], naive, "candidate {cand}");
        }
    }

    #[test]
    fn matches_prefix_tree_on_random_data() {
        use crate::prefix_tree::PrefixTree;
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(12);
        let mut cands: Vec<ItemSet> = (0..80)
            .map(|_| {
                let k = rng.gen_range(1..=4usize);
                let mut ids: Vec<u32> = (0..30).collect();
                ids.shuffle(&mut rng);
                ItemSet::from_ids(&ids[..k])
            })
            .collect();
        cands.sort();
        cands.dedup();
        let block = TxBlock::new(
            BlockId(1),
            (0..500)
                .map(|i| {
                    let k = rng.gen_range(1..=12usize);
                    let mut ids: Vec<u32> = (0..30).collect();
                    ids.shuffle(&mut rng);
                    tx(i, &ids[..k])
                })
                .collect(),
        );
        let mut ht = HashTree::with_capacity(&cands, 3);
        ht.count_block(&block);
        let mut pt = PrefixTree::build(&cands);
        pt.count_block(&block);
        assert_eq!(ht.counts(), pt.counts());
    }

    #[test]
    fn empty_tree_and_empty_transactions() {
        let mut t = HashTree::build(&[]);
        assert!(t.is_empty());
        t.add_transaction(&[]);
        let cands = vec![set(&[1])];
        let mut t = HashTree::build(&cands);
        t.add_transaction(&[]);
        assert_eq!(t.into_counts(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        HashTree::with_capacity(&[], 0);
    }
}
