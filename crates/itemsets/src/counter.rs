//! Pluggable support-counting backends for the BORDERS update phase.
//!
//! The update phase must count the supports of a (typically small) set of
//! new candidate itemsets over the *entire* selected dataset. The paper
//! compares three procedures:
//!
//! * **PT-Scan** — organize the candidates in a prefix tree and scan every
//!   transaction of every selected block (the original BORDERS procedure);
//! * **ECUT** — intersect the per-block TID-lists of the candidate's
//!   *items*, fetching only the relevant fraction of the data;
//! * **ECUT+** — like ECUT, but prefer materialized TID-lists of
//!   2-itemsets when a candidate can be covered by pairs, which shortens
//!   the lists to intersect.
//!
//! Besides wall-clock time (measured by the benches), every backend
//! reports `units_read` — the number of item/TID units fetched — which is
//! the hardware-independent cost model the paper argues from.
//!
//! # Parallelism
//!
//! [`count_supports_with`] shards the work over a [`Parallelism`]: ECUT
//! and ECUT+ over contiguous **candidate chunks** (each worker owns a
//! disjoint slice of the output counts), PT-Scan over contiguous
//! **transaction ranges** of the selected blocks (every worker probes
//! one shared, immutable [`FlatPrefixTree`] into its own flat count
//! array, and the per-candidate counts are summed by index in shard
//! order). Both reductions are exact integer sums in a thread-count
//! independent order, so results are bit-identical at any thread count.
//! [`count_supports`] uses the process-wide default
//! ([`demon_types::parallel::global`]).
//!
//! Shard boundaries are **payload-aware**
//! ([`demon_types::parallel::par_weighted_ranges`]): PT-Scan splits by
//! transaction length (items probed), ECUT/ECUT+ by each candidate's
//! summed TID-list length (TIDs intersected), so equal-index spans with
//! wildly different payloads no longer leave one shard with most of the
//! work. The weights are functions of the dataset alone — never of the
//! thread count — so split points depend only on (input, requested
//! shards) and determinism is preserved.
//!
//! On single-worker hardware
//! ([`demon_types::parallel::single_worker`]) both backends skip the
//! per-shard accumulators and fill one shared buffer — bit-identical
//! output (the merges are exact), none of the merge overhead, so
//! requesting many threads on a small box costs nothing.

use crate::prefix_tree::{FlatPrefixTree, SupportCell};
use crate::store::{TxEntry, TxStore};
use crate::tidlist::{intersect_sorted_count, BlockTidLists, IntersectScratch};
use demon_store::Pinned;
use demon_types::parallel::{self, par_weighted_ranges};
use demon_types::{obs, BlockId, Item, ItemSet, Parallelism, Tid, TxBlock};
use serde::{Deserialize, Serialize};

/// Which counting backend the update phase uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterKind {
    /// Prefix-tree scan of all selected transactions (BORDERS baseline).
    PtScan,
    /// TID-list intersection over single items.
    Ecut,
    /// TID-list intersection preferring materialized 2-itemset lists.
    EcutPlus,
    /// Estimate both costs per pass and pick the cheaper backend — the
    /// decision rule behind the paper's empirical PT-Scan/ECUT trade-off
    /// study ("whenever the number of itemsets to be counted is not
    /// large, ECUT is significantly faster"). The TID-list cost is the
    /// sum of the candidates' item-list lengths; the scan cost is the
    /// transactional size of the selected blocks.
    Adaptive,
}

impl CounterKind {
    /// Short human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::PtScan => "PT-Scan",
            CounterKind::Ecut => "ECUT",
            CounterKind::EcutPlus => "ECUT+",
            CounterKind::Adaptive => "Adaptive",
        }
    }
}

/// Result of a counting pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountResult {
    /// Support counts, one per candidate, in input order.
    pub counts: Vec<u64>,
    /// Item/TID units fetched from the dataset representation.
    pub units_read: u64,
    /// Number of distinct list/scan fetches issued: per-block sequential
    /// scans for PT-Scan, per-block per-candidate TID-list segments for
    /// ECUT/ECUT+. On the paper's 1996 hardware each fetch costs a disk
    /// seek, which is what produces the ECUT/PT-Scan crossover of Fig. 2.
    pub lists_fetched: u64,
}

/// Counts the supports of `candidates` over the blocks `ids` of `store`
/// using the chosen backend and the process-wide default parallelism.
/// Blocks missing from the store contribute nothing (they have been
/// retired).
pub fn count_supports(
    kind: CounterKind,
    store: &TxStore,
    ids: &[BlockId],
    candidates: &[ItemSet],
) -> CountResult {
    count_supports_with(kind, store, ids, candidates, parallel::global())
}

/// [`count_supports`] with an explicit [`Parallelism`]. Results are
/// bit-identical at any thread count (see the module docs).
pub fn count_supports_with(
    kind: CounterKind,
    store: &TxStore,
    ids: &[BlockId],
    candidates: &[ItemSet],
    par: Parallelism,
) -> CountResult {
    if candidates.is_empty() {
        return CountResult::default();
    }
    // Pin every selected block up front, serially and in selection
    // order: any storage-engine loads (and their `store.*` counters)
    // happen before the parallel region, so the shards below never
    // touch the engine and results stay thread-count invariant even
    // under a memory budget. Retired blocks are skipped, as before.
    let pinned = store.pin_entries(ids);
    let resolved = match kind {
        CounterKind::Adaptive => {
            if tid_cost_estimate(&pinned, candidates) <= scan_cost_estimate(&pinned) {
                CounterKind::EcutPlus
            } else {
                CounterKind::PtScan
            }
        }
        fixed => fixed,
    };
    let result = match resolved {
        CounterKind::PtScan => pt_scan(&pinned, candidates, par),
        CounterKind::Ecut => tid_count(&pinned, candidates, false, par),
        CounterKind::EcutPlus => tid_count(&pinned, candidates, true, par),
        CounterKind::Adaptive => unreachable!("resolved above"),
    };
    obs::add(obs::Counter::CandidatesProbed, candidates.len() as u64);
    let units = match resolved {
        CounterKind::PtScan => obs::Counter::TxScanned,
        _ => obs::Counter::TidsScanned,
    };
    obs::add(units, result.units_read);
    result
}

/// [`count_supports`] scattered over a *partitioned* dataset: each store
/// in `stores` holds a disjoint subset of the selected blocks, every
/// shard counts the same `candidates` over its own store (with
/// [`count_supports_with`] under [`Parallelism::serial`], so the only
/// parallelism is the one-shard-per-store fan-out), and the per-shard
/// results are merged by candidate index **in shard order** — the same
/// per-shard-merge discipline as [`demon_types::parallel::par_ranges`],
/// which this reuses.
///
/// Supports are additive over disjoint block sets, so the merged counts
/// are bit-identical to a single-store [`count_supports`] over the union
/// at any shard count (blocks missing from a shard contribute nothing,
/// exactly as retired blocks do). `Adaptive` may resolve to different
/// backends on different shards; every backend is exact, so the merge is
/// still bit-identical.
pub fn count_supports_sharded(
    kind: CounterKind,
    stores: &[&TxStore],
    ids: &[BlockId],
    candidates: &[ItemSet],
) -> CountResult {
    if candidates.is_empty() || stores.is_empty() {
        return CountResult::default();
    }
    if stores.len() == 1 {
        return count_supports_with(kind, stores[0], ids, candidates, Parallelism::serial());
    }
    let shards = parallel::par_ranges(Parallelism::new(stores.len()), stores.len(), |range| {
        let mut merged = CountResult {
            counts: vec![0u64; candidates.len()],
            ..CountResult::default()
        };
        for store in &stores[range] {
            let r = count_supports_with(kind, store, ids, candidates, Parallelism::serial());
            for (total, c) in merged.counts.iter_mut().zip(r.counts) {
                *total += c;
            }
            merged.units_read += r.units_read;
            merged.lists_fetched += r.lists_fetched;
        }
        merged
    });
    let mut counts = vec![0u64; candidates.len()];
    let mut units = 0u64;
    let mut fetched = 0u64;
    for shard in shards {
        for (total, c) in counts.iter_mut().zip(shard.counts) {
            *total += c;
        }
        units += shard.units_read;
        fetched += shard.lists_fetched;
    }
    CountResult {
        counts,
        units_read: units,
        lists_fetched: fetched,
    }
}

/// Units ECUT+ would read: Σ over blocks and candidates of the item-list
/// lengths (pair covers only shrink this, so it is an upper bound).
fn tid_cost_estimate(entries: &[Pinned<'_, TxEntry>], candidates: &[ItemSet]) -> u64 {
    let mut cost = 0u64;
    for entry in entries {
        let lists = &entry.lists;
        for cand in candidates {
            cost += cand
                .items()
                .iter()
                .map(|&i| lists.item_support(i))
                .sum::<u64>();
        }
    }
    cost
}

/// Units PT-Scan would read: the transactional size of the selection.
fn scan_cost_estimate(entries: &[Pinned<'_, TxEntry>]) -> u64 {
    entries.iter().map(|e| e.lists.item_space()).sum()
}

/// PT-Scan, sharded over contiguous transaction ranges of the selected
/// blocks. The prefix tree is built **once**, before the parallel
/// region, as an immutable [`FlatPrefixTree`] shared by reference:
/// every worker probes it into its own flat count array, and the
/// per-candidate counts (exact `u64`s) are summed by index in shard
/// order, which makes the result independent of the thread count.
/// Shard boundaries weight each transaction by its length, so skewed
/// blocks (a few huge transactions) still split evenly by probe work.
fn pt_scan(entries: &[Pinned<'_, TxEntry>], candidates: &[ItemSet], par: Parallelism) -> CountResult {
    let blocks: Vec<&TxBlock> = entries.iter().map(|e| &e.block).collect();
    let fetched = blocks.len() as u64;
    // Prefix sums of block lengths: shard the *global* transaction index.
    let mut starts = Vec::with_capacity(blocks.len() + 1);
    starts.push(0usize);
    for b in &blocks {
        starts.push(starts.last().copied().unwrap_or(0) + b.len());
    }
    let total_tx = *starts.last().unwrap_or(&0);
    // Probe cost of a transaction grows with its length; `+1` keeps
    // empty transactions from collapsing to weightless points.
    let mut weights = Vec::with_capacity(total_tx);
    for b in &blocks {
        weights.extend(b.records().iter().map(|tx| tx.len() as u64 + 1));
    }

    let tree = FlatPrefixTree::build(candidates);
    // Narrow (u32) shard counts halve the memory traffic on the
    // random-access count array; they cannot overflow as long as a
    // shard counts fewer than `u32::MAX` transactions. The u64 fallback
    // is unreachable for any dataset that fits in memory.
    let (counts, units) = if total_tx < u32::MAX as usize {
        pt_scan_shards::<u32>(&tree, &blocks, &starts, &weights, par)
    } else {
        pt_scan_shards::<u64>(&tree, &blocks, &starts, &weights, par)
    };
    CountResult {
        counts,
        units_read: units,
        lists_fetched: fetched,
    }
}

/// The sharded scan of [`pt_scan`], generic over the per-shard count
/// width. Returns the merged (by candidate index, in shard order)
/// counts and the total item units read.
fn pt_scan_shards<C: SupportCell + Send>(
    tree: &FlatPrefixTree,
    blocks: &[&TxBlock],
    starts: &[usize],
    weights: &[u64],
    par: Parallelism,
) -> (Vec<u64>, u64) {
    // Single-worker hardware runs shards sequentially anyway; fill one
    // shared count array instead of allocating and merging one per
    // shard. Counts are exact integer sums, so this is bit-identical to
    // the sharded merge below (see `parallel::single_worker`).
    if parallel::single_worker() {
        let mut counts = vec![C::default(); tree.len()];
        let mut units = 0u64;
        for b in blocks {
            for tx in b.records() {
                units += tx.len() as u64;
                tree.count_transaction(tx.items(), &mut counts);
            }
        }
        return (counts.into_iter().map(SupportCell::widen).collect(), units);
    }
    let shards = par_weighted_ranges(par, weights, |range| {
        let mut counts = vec![C::default(); tree.len()];
        let mut units = 0u64;
        // First block overlapping the range.
        let mut bi = match starts.binary_search(&range.start) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut at = range.start;
        while at < range.end && bi < blocks.len() {
            let block_end = starts[bi + 1].min(range.end);
            for tx in &blocks[bi].records()[at - starts[bi]..block_end - starts[bi]] {
                units += tx.len() as u64;
                tree.count_transaction(tx.items(), &mut counts);
            }
            at = block_end;
            bi += 1;
        }
        (counts, units)
    });

    let mut counts = vec![0u64; tree.len()];
    let mut units = 0u64;
    for (shard_counts, shard_units) in shards {
        for (total, c) in counts.iter_mut().zip(shard_counts) {
            *total += c.widen();
        }
        units += shard_units;
    }
    (counts, units)
}

/// Reusable per-worker buffers for the TID-list counting inner loop —
/// one set per shard, reused across every (block, candidate) pair, so
/// the loop performs no per-call allocations (see the scratch-buffer
/// reuse contract on [`IntersectScratch`]).
#[derive(Default)]
struct CountScratch<'s> {
    /// The TID-lists chosen to intersect for the current candidate.
    lists: Vec<&'s [Tid]>,
    /// Candidate-internal pairs with materialized lists, by list length.
    pairs: Vec<(usize, Item, Item)>,
    /// Items already covered by a chosen pair list.
    covered: Vec<Item>,
    /// Kernel scratch (bitset window + multiway ping-pong buffers).
    kernels: IntersectScratch,
}

/// ECUT / ECUT+, sharded over contiguous candidate chunks: each worker
/// owns a disjoint slice of the output counts and walks all selected
/// blocks for its candidates, accumulating into per-worker scratch.
/// Shard boundaries weight each candidate by its summed item TID-list
/// length over the selected blocks — the intersection work it will
/// cost — so a few heavy candidates no longer serialize one shard.
fn tid_count(
    entries: &[Pinned<'_, TxEntry>],
    candidates: &[ItemSet],
    use_pairs: bool,
    par: Parallelism,
) -> CountResult {
    // Single-worker hardware: one pass with one scratch set, skipping
    // both the per-candidate weight computation and the per-shard
    // output segments. Per-candidate counts are independent, so this is
    // bit-identical to the sharded path (see `parallel::single_worker`).
    if parallel::single_worker() {
        let mut counts = vec![0u64; candidates.len()];
        let mut units = 0u64;
        let mut fetched = 0u64;
        let mut scratch = CountScratch::default();
        for entry in entries {
            let lists = &entry.lists;
            for (ci, cand) in candidates.iter().enumerate() {
                let (support, read, n_lists) = if use_pairs {
                    count_in_block_with_pairs(lists, cand, &mut scratch)
                } else {
                    count_in_block_items(lists, cand, &mut scratch)
                };
                counts[ci] += support;
                units += read;
                fetched += n_lists;
            }
        }
        return CountResult {
            counts,
            units_read: units,
            lists_fetched: fetched,
        };
    }
    let weights: Vec<u64> = candidates
        .iter()
        .map(|cand| {
            let tids: u64 = entries
                .iter()
                .map(|e| {
                    cand.items()
                        .iter()
                        .map(|&i| e.lists.item_support(i))
                        .sum::<u64>()
                })
                .sum();
            tids + 1 // Never weightless: zero-support candidates still cost a probe.
        })
        .collect();
    let shards = par_weighted_ranges(par, &weights, |range| {
        let mut counts = vec![0u64; range.len()];
        let mut units = 0u64;
        let mut fetched = 0u64;
        let mut scratch = CountScratch::default();
        for entry in entries {
            let lists = &entry.lists;
            for (ci, cand) in candidates[range.clone()].iter().enumerate() {
                let (support, read, n_lists) = if use_pairs {
                    count_in_block_with_pairs(lists, cand, &mut scratch)
                } else {
                    count_in_block_items(lists, cand, &mut scratch)
                };
                counts[ci] += support;
                units += read;
                fetched += n_lists;
            }
        }
        (counts, units, fetched)
    });

    let mut counts = Vec::with_capacity(candidates.len());
    let mut units = 0u64;
    let mut fetched = 0u64;
    for (shard_counts, shard_units, shard_fetched) in shards {
        counts.extend(shard_counts);
        units += shard_units;
        fetched += shard_fetched;
    }
    CountResult {
        counts,
        units_read: units,
        lists_fetched: fetched,
    }
}

/// ECUT: intersect the single-item lists of the candidate within one block.
/// Returns `(support, units_read, lists_fetched)`.
fn count_in_block_items<'s>(
    lists: &'s BlockTidLists,
    cand: &ItemSet,
    scratch: &mut CountScratch<'s>,
) -> (u64, u64, u64) {
    debug_assert!(!cand.is_empty());
    scratch.lists.clear();
    scratch
        .lists
        .extend(cand.items().iter().map(|&i| lists.item_list(i)));
    finish_intersection(scratch)
}

/// ECUT+: greedily cover the candidate with materialized pair lists
/// (shortest first), fall back to single-item lists for uncovered items.
///
/// Any family of itemsets whose union equals the candidate yields its
/// support when their TID-lists are intersected (paper §3.1.1, ECUT+);
/// pair lists are never longer than either member's item list, so every
/// pair substitution reduces the data fetched.
fn count_in_block_with_pairs<'s>(
    lists: &'s BlockTidLists,
    cand: &ItemSet,
    scratch: &mut CountScratch<'s>,
) -> (u64, u64, u64) {
    debug_assert!(!cand.is_empty());
    if cand.len() == 1 {
        return count_in_block_items(lists, cand, scratch);
    }
    // Collect available pairs inside the candidate, with their list lengths.
    scratch.pairs.clear();
    scratch.pairs.extend(
        cand.pairs()
            .filter_map(|(a, b)| lists.pair_list(a, b).map(|l| (l.len(), a, b))),
    );
    if scratch.pairs.is_empty() {
        return count_in_block_items(lists, cand, scratch);
    }
    scratch.pairs.sort_unstable();
    scratch.covered.clear();
    scratch.lists.clear();
    for pi in 0..scratch.pairs.len() {
        let (_, a, b) = scratch.pairs[pi];
        let new_a = !scratch.covered.contains(&a);
        let new_b = !scratch.covered.contains(&b);
        if new_a || new_b {
            scratch
                .lists
                .push(lists.pair_list(a, b).expect("pair was listed"));
            if new_a {
                scratch.covered.push(a);
            }
            if new_b {
                scratch.covered.push(b);
            }
            if scratch.covered.len() == cand.len() {
                break;
            }
        }
    }
    for &item in cand.items() {
        if !scratch.covered.contains(&item) {
            scratch.lists.push(lists.item_list(item));
        }
    }
    finish_intersection(scratch)
}

/// Intersects `scratch.lists` (count-only: the conjunction's TID-list is
/// never materialized), returning `(support, units_read, lists_fetched)`;
/// the single-list fast path reads no TIDs beyond the list length.
fn finish_intersection(scratch: &mut CountScratch<'_>) -> (u64, u64, u64) {
    let read: u64 = scratch.lists.iter().map(|l| l.len() as u64).sum();
    let n_lists = scratch.lists.len() as u64;
    if scratch.lists.len() == 1 {
        return (scratch.lists[0].len() as u64, read, n_lists);
    }
    // One pairwise merge per extra list; totals are sharding-independent.
    obs::add(obs::Counter::Intersections, n_lists - 1);
    let support = intersect_sorted_count(&mut scratch.lists, &mut scratch.kernels);
    (support, read, n_lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::naive_support;
    use demon_types::{Tid, Transaction, TxBlock};

    fn block(id: u64, base_tid: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(base_tid + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    fn sample_store() -> (TxStore, Vec<TxBlock>) {
        let b1 = block(1, 1, &[&[0, 1, 2], &[0, 1], &[1, 2], &[3]]);
        let b2 = block(2, 100, &[&[0, 1, 2], &[0, 2], &[2, 3]]);
        let mut s = TxStore::new(4);
        s.add_block(b1.clone());
        s.add_block(b2.clone());
        (s, vec![b1, b2])
    }

    fn candidates() -> Vec<ItemSet> {
        vec![
            ItemSet::from_ids(&[0]),
            ItemSet::from_ids(&[0, 1]),
            ItemSet::from_ids(&[0, 1, 2]),
            ItemSet::from_ids(&[2, 3]),
            ItemSet::from_ids(&[3]),
        ]
    }

    #[test]
    fn all_backends_agree_with_naive() {
        let (mut store, blocks) = sample_store();
        // Materialize every pair in both blocks for ECUT+.
        let all_pairs: Vec<(Item, Item)> = (0..4u32)
            .flat_map(|a| (a + 1..4).map(move |b| (Item(a), Item(b))))
            .collect();
        store.materialize_pairs(BlockId(1), &all_pairs, None);
        store.materialize_pairs(BlockId(2), &all_pairs, None);
        let ids = [BlockId(1), BlockId(2)];
        let refs: Vec<&TxBlock> = blocks.iter().collect();
        for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
            let r = count_supports(kind, &store, &ids, &candidates());
            for (cand, &got) in candidates().iter().zip(&r.counts) {
                assert_eq!(
                    got,
                    naive_support(cand, &refs),
                    "{} disagrees on {cand}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn ecut_reads_less_than_pt_scan_for_few_candidates() {
        let (store, _) = sample_store();
        let ids = [BlockId(1), BlockId(2)];
        let few = vec![ItemSet::from_ids(&[0, 1])];
        let pt = count_supports(CounterKind::PtScan, &store, &ids, &few);
        let ec = count_supports(CounterKind::Ecut, &store, &ids, &few);
        assert_eq!(pt.counts, ec.counts);
        assert!(
            ec.units_read < pt.units_read,
            "ECUT read {} vs PT-Scan {}",
            ec.units_read,
            pt.units_read
        );
    }

    #[test]
    fn ecut_plus_reads_no_more_than_ecut() {
        let (mut store, _) = sample_store();
        let all_pairs: Vec<(Item, Item)> = (0..4u32)
            .flat_map(|a| (a + 1..4).map(move |b| (Item(a), Item(b))))
            .collect();
        store.materialize_pairs(BlockId(1), &all_pairs, None);
        store.materialize_pairs(BlockId(2), &all_pairs, None);
        let ids = [BlockId(1), BlockId(2)];
        let cands = vec![ItemSet::from_ids(&[0, 1, 2]), ItemSet::from_ids(&[0, 1])];
        let ec = count_supports(CounterKind::Ecut, &store, &ids, &cands);
        let ep = count_supports(CounterKind::EcutPlus, &store, &ids, &cands);
        assert_eq!(ec.counts, ep.counts);
        assert!(ep.units_read <= ec.units_read);
    }

    #[test]
    fn ecut_plus_without_materialized_pairs_falls_back_to_ecut() {
        let (store, _) = sample_store();
        let ids = [BlockId(1), BlockId(2)];
        let cands = vec![ItemSet::from_ids(&[0, 1, 2])];
        let ec = count_supports(CounterKind::Ecut, &store, &ids, &cands);
        let ep = count_supports(CounterKind::EcutPlus, &store, &ids, &cands);
        assert_eq!(ec, ep);
    }

    #[test]
    fn counting_respects_block_selection() {
        // The 0/1 property: only selected blocks contribute.
        let (store, blocks) = sample_store();
        let only_b2 = [BlockId(2)];
        let cands = vec![ItemSet::from_ids(&[0, 2])];
        for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
            let r = count_supports(kind, &store, &only_b2, &cands);
            assert_eq!(
                r.counts[0],
                naive_support(&cands[0], &[&blocks[1]]),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn missing_blocks_are_skipped() {
        let (store, _) = sample_store();
        let ids = [BlockId(1), BlockId(7)];
        let cands = vec![ItemSet::from_ids(&[0])];
        let r = count_supports(CounterKind::Ecut, &store, &ids, &cands);
        assert_eq!(r.counts, vec![2]);
    }

    #[test]
    fn adaptive_agrees_with_fixed_backends() {
        let (store, blocks) = sample_store();
        let ids = [BlockId(1), BlockId(2)];
        let refs: Vec<&TxBlock> = blocks.iter().collect();
        let r = count_supports(CounterKind::Adaptive, &store, &ids, &candidates());
        for (cand, &got) in candidates().iter().zip(&r.counts) {
            assert_eq!(got, naive_support(cand, &refs), "Adaptive wrong on {cand}");
        }
    }

    #[test]
    fn adaptive_picks_tid_lists_for_few_candidates_and_scan_for_many() {
        let (store, _) = sample_store();
        let ids = [BlockId(1), BlockId(2)];
        // One candidate: TID cost ≈ a few entries << scan cost.
        let few = vec![ItemSet::from_ids(&[0, 1])];
        let r_few = count_supports(CounterKind::Adaptive, &store, &ids, &few);
        let r_ecut = count_supports(CounterKind::EcutPlus, &store, &ids, &few);
        assert_eq!(r_few.units_read, r_ecut.units_read, "should use TID-lists");
        // Many (duplicated-item) candidates: TID cost exceeds the scan.
        let many: Vec<ItemSet> = (0..200).map(|_| ItemSet::from_ids(&[0, 1, 2])).collect();
        let r_many = count_supports(CounterKind::Adaptive, &store, &ids, &many);
        let r_scan = count_supports(CounterKind::PtScan, &store, &ids, &many);
        assert_eq!(r_many.units_read, r_scan.units_read, "should scan");
    }

    #[test]
    fn every_backend_is_thread_count_invariant() {
        let (mut store, _) = sample_store();
        let all_pairs: Vec<(Item, Item)> = (0..4u32)
            .flat_map(|a| (a + 1..4).map(move |b| (Item(a), Item(b))))
            .collect();
        store.materialize_pairs(BlockId(1), &all_pairs, None);
        store.materialize_pairs(BlockId(2), &all_pairs, None);
        let ids = [BlockId(1), BlockId(2)];
        for kind in [
            CounterKind::PtScan,
            CounterKind::Ecut,
            CounterKind::EcutPlus,
            CounterKind::Adaptive,
        ] {
            let serial = count_supports_with(
                kind,
                &store,
                &ids,
                &candidates(),
                Parallelism::serial(),
            );
            for threads in [2usize, 3, 8] {
                let par = count_supports_with(
                    kind,
                    &store,
                    &ids,
                    &candidates(),
                    Parallelism::new(threads),
                );
                assert_eq!(serial, par, "{} at {threads} threads", kind.name());
            }
        }
    }

    #[test]
    fn sharded_counting_is_byte_identical_to_single_store() {
        // Partition four blocks across 1, 2 and 3 stores; every layout
        // must merge to exactly the single-store counts.
        let b1 = block(1, 1, &[&[0, 1, 2], &[0, 1], &[1, 2], &[3]]);
        let b2 = block(2, 100, &[&[0, 1, 2], &[0, 2], &[2, 3]]);
        let b3 = block(3, 200, &[&[0, 3], &[1, 2, 3], &[0, 1, 2, 3]]);
        let b4 = block(4, 300, &[&[2], &[0, 1]]);
        let blocks = [b1, b2, b3, b4];
        let ids: Vec<BlockId> = blocks.iter().map(|b| b.id()).collect();
        let mut whole = TxStore::new(4);
        for b in &blocks {
            whole.add_block(b.clone());
        }
        for kind in [
            CounterKind::PtScan,
            CounterKind::Ecut,
            CounterKind::EcutPlus,
            CounterKind::Adaptive,
        ] {
            let reference =
                count_supports_with(kind, &whole, &ids, &candidates(), Parallelism::serial());
            for n_shards in [1usize, 2, 3] {
                let mut stores: Vec<TxStore> = (0..n_shards).map(|_| TxStore::new(4)).collect();
                for (i, b) in blocks.iter().enumerate() {
                    stores[i % n_shards].add_block(b.clone());
                }
                let refs: Vec<&TxStore> = stores.iter().collect();
                let sharded = count_supports_sharded(kind, &refs, &ids, &candidates());
                assert_eq!(
                    sharded.counts,
                    reference.counts,
                    "{} diverged at {n_shards} shards",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn empty_candidates_short_circuit() {
        let (store, _) = sample_store();
        let r = count_supports(CounterKind::PtScan, &store, &[BlockId(1)], &[]);
        assert_eq!(r, CountResult::default());
    }
}
