//! Pluggable support-counting backends for the BORDERS update phase.
//!
//! The update phase must count the supports of a (typically small) set of
//! new candidate itemsets over the *entire* selected dataset. The paper
//! compares three procedures:
//!
//! * **PT-Scan** — organize the candidates in a prefix tree and scan every
//!   transaction of every selected block (the original BORDERS procedure);
//! * **ECUT** — intersect the per-block TID-lists of the candidate's
//!   *items*, fetching only the relevant fraction of the data;
//! * **ECUT+** — like ECUT, but prefer materialized TID-lists of
//!   2-itemsets when a candidate can be covered by pairs, which shortens
//!   the lists to intersect.
//!
//! Besides wall-clock time (measured by the benches), every backend
//! reports `units_read` — the number of item/TID units fetched — which is
//! the hardware-independent cost model the paper argues from.

use crate::prefix_tree::PrefixTree;
use crate::store::TxStore;
use crate::tidlist::{intersect_all, BlockTidLists};
use demon_types::{BlockId, Item, ItemSet};
use serde::{Deserialize, Serialize};

/// Which counting backend the update phase uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterKind {
    /// Prefix-tree scan of all selected transactions (BORDERS baseline).
    PtScan,
    /// TID-list intersection over single items.
    Ecut,
    /// TID-list intersection preferring materialized 2-itemset lists.
    EcutPlus,
    /// Estimate both costs per pass and pick the cheaper backend — the
    /// decision rule behind the paper's empirical PT-Scan/ECUT trade-off
    /// study ("whenever the number of itemsets to be counted is not
    /// large, ECUT is significantly faster"). The TID-list cost is the
    /// sum of the candidates' item-list lengths; the scan cost is the
    /// transactional size of the selected blocks.
    Adaptive,
}

impl CounterKind {
    /// Short human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::PtScan => "PT-Scan",
            CounterKind::Ecut => "ECUT",
            CounterKind::EcutPlus => "ECUT+",
            CounterKind::Adaptive => "Adaptive",
        }
    }
}

/// Result of a counting pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountResult {
    /// Support counts, one per candidate, in input order.
    pub counts: Vec<u64>,
    /// Item/TID units fetched from the dataset representation.
    pub units_read: u64,
    /// Number of distinct list/scan fetches issued: per-block sequential
    /// scans for PT-Scan, per-block per-candidate TID-list segments for
    /// ECUT/ECUT+. On the paper's 1996 hardware each fetch costs a disk
    /// seek, which is what produces the ECUT/PT-Scan crossover of Fig. 2.
    pub lists_fetched: u64,
}

/// Counts the supports of `candidates` over the blocks `ids` of `store`
/// using the chosen backend. Blocks missing from the store contribute
/// nothing (they have been retired).
pub fn count_supports(
    kind: CounterKind,
    store: &TxStore,
    ids: &[BlockId],
    candidates: &[ItemSet],
) -> CountResult {
    if candidates.is_empty() {
        return CountResult::default();
    }
    match kind {
        CounterKind::PtScan => pt_scan(store, ids, candidates),
        CounterKind::Ecut => tid_count(store, ids, candidates, false),
        CounterKind::EcutPlus => tid_count(store, ids, candidates, true),
        CounterKind::Adaptive => {
            if tid_cost_estimate(store, ids, candidates) <= scan_cost_estimate(store, ids) {
                tid_count(store, ids, candidates, true)
            } else {
                pt_scan(store, ids, candidates)
            }
        }
    }
}

/// Units ECUT+ would read: Σ over blocks and candidates of the item-list
/// lengths (pair covers only shrink this, so it is an upper bound).
fn tid_cost_estimate(store: &TxStore, ids: &[BlockId], candidates: &[ItemSet]) -> u64 {
    let mut cost = 0u64;
    for id in ids {
        if let Some(lists) = store.tidlists().block(*id) {
            for cand in candidates {
                cost += cand
                    .items()
                    .iter()
                    .map(|&i| lists.item_support(i))
                    .sum::<u64>();
            }
        }
    }
    cost
}

/// Units PT-Scan would read: the transactional size of the selection.
fn scan_cost_estimate(store: &TxStore, ids: &[BlockId]) -> u64 {
    store.item_space(ids)
}

fn pt_scan(store: &TxStore, ids: &[BlockId], candidates: &[ItemSet]) -> CountResult {
    let mut tree = PrefixTree::build(candidates);
    let mut units = 0u64;
    let mut fetched = 0u64;
    for id in ids {
        if let Some(block) = store.block(*id) {
            fetched += 1;
            for tx in block.records() {
                units += tx.len() as u64;
                tree.add_transaction(tx.items());
            }
        }
    }
    CountResult {
        counts: tree.into_counts(),
        units_read: units,
        lists_fetched: fetched,
    }
}

fn tid_count(
    store: &TxStore,
    ids: &[BlockId],
    candidates: &[ItemSet],
    use_pairs: bool,
) -> CountResult {
    let mut counts = vec![0u64; candidates.len()];
    let mut units = 0u64;
    let mut fetched = 0u64;
    for id in ids {
        let Some(lists) = store.tidlists().block(*id) else {
            continue;
        };
        for (ci, cand) in candidates.iter().enumerate() {
            let (support, read, n_lists) = if use_pairs {
                count_in_block_with_pairs(lists, cand)
            } else {
                count_in_block_items(lists, cand)
            };
            counts[ci] += support;
            units += read;
            fetched += n_lists;
        }
    }
    CountResult {
        counts,
        units_read: units,
        lists_fetched: fetched,
    }
}

/// ECUT: intersect the single-item lists of the candidate within one block.
/// Returns `(support, units_read, lists_fetched)`.
fn count_in_block_items(lists: &BlockTidLists, cand: &ItemSet) -> (u64, u64, u64) {
    debug_assert!(!cand.is_empty());
    let fetched: Vec<&[demon_types::Tid]> =
        cand.items().iter().map(|&i| lists.item_list(i)).collect();
    let read: u64 = fetched.iter().map(|l| l.len() as u64).sum();
    let n_lists = fetched.len() as u64;
    if fetched.len() == 1 {
        return (fetched[0].len() as u64, read, n_lists);
    }
    (intersect_all(&fetched).len() as u64, read, n_lists)
}

/// ECUT+: greedily cover the candidate with materialized pair lists
/// (shortest first), fall back to single-item lists for uncovered items.
///
/// Any family of itemsets whose union equals the candidate yields its
/// support when their TID-lists are intersected (paper §3.1.1, ECUT+);
/// pair lists are never longer than either member's item list, so every
/// pair substitution reduces the data fetched.
fn count_in_block_with_pairs(lists: &BlockTidLists, cand: &ItemSet) -> (u64, u64, u64) {
    debug_assert!(!cand.is_empty());
    if cand.len() == 1 {
        return count_in_block_items(lists, cand);
    }
    // Collect available pairs inside the candidate, with their list lengths.
    let mut pairs: Vec<(usize, Item, Item)> = cand
        .pairs()
        .filter_map(|(a, b)| lists.pair_list(a, b).map(|l| (l.len(), a, b)))
        .collect();
    if pairs.is_empty() {
        return count_in_block_items(lists, cand);
    }
    pairs.sort_unstable();
    let mut covered: Vec<Item> = Vec::with_capacity(cand.len());
    let mut chosen: Vec<&[demon_types::Tid]> = Vec::new();
    for (_, a, b) in &pairs {
        let new_a = !covered.contains(a);
        let new_b = !covered.contains(b);
        if new_a || new_b {
            chosen.push(lists.pair_list(*a, *b).expect("pair was listed"));
            if new_a {
                covered.push(*a);
            }
            if new_b {
                covered.push(*b);
            }
            if covered.len() == cand.len() {
                break;
            }
        }
    }
    for &item in cand.items() {
        if !covered.contains(&item) {
            chosen.push(lists.item_list(item));
        }
    }
    let read: u64 = chosen.iter().map(|l| l.len() as u64).sum();
    let n_lists = chosen.len() as u64;
    if chosen.len() == 1 {
        return (chosen[0].len() as u64, read, n_lists);
    }
    (intersect_all(&chosen).len() as u64, read, n_lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::naive_support;
    use demon_types::{Tid, Transaction, TxBlock};

    fn block(id: u64, base_tid: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(base_tid + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    fn sample_store() -> (TxStore, Vec<TxBlock>) {
        let b1 = block(1, 1, &[&[0, 1, 2], &[0, 1], &[1, 2], &[3]]);
        let b2 = block(2, 100, &[&[0, 1, 2], &[0, 2], &[2, 3]]);
        let mut s = TxStore::new(4);
        s.add_block(b1.clone());
        s.add_block(b2.clone());
        (s, vec![b1, b2])
    }

    fn candidates() -> Vec<ItemSet> {
        vec![
            ItemSet::from_ids(&[0]),
            ItemSet::from_ids(&[0, 1]),
            ItemSet::from_ids(&[0, 1, 2]),
            ItemSet::from_ids(&[2, 3]),
            ItemSet::from_ids(&[3]),
        ]
    }

    #[test]
    fn all_backends_agree_with_naive() {
        let (mut store, blocks) = sample_store();
        // Materialize every pair in both blocks for ECUT+.
        let all_pairs: Vec<(Item, Item)> = (0..4u32)
            .flat_map(|a| (a + 1..4).map(move |b| (Item(a), Item(b))))
            .collect();
        store.materialize_pairs(BlockId(1), &all_pairs, None);
        store.materialize_pairs(BlockId(2), &all_pairs, None);
        let ids = [BlockId(1), BlockId(2)];
        let refs: Vec<&TxBlock> = blocks.iter().collect();
        for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
            let r = count_supports(kind, &store, &ids, &candidates());
            for (cand, &got) in candidates().iter().zip(&r.counts) {
                assert_eq!(
                    got,
                    naive_support(cand, &refs),
                    "{} disagrees on {cand}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn ecut_reads_less_than_pt_scan_for_few_candidates() {
        let (store, _) = sample_store();
        let ids = [BlockId(1), BlockId(2)];
        let few = vec![ItemSet::from_ids(&[0, 1])];
        let pt = count_supports(CounterKind::PtScan, &store, &ids, &few);
        let ec = count_supports(CounterKind::Ecut, &store, &ids, &few);
        assert_eq!(pt.counts, ec.counts);
        assert!(
            ec.units_read < pt.units_read,
            "ECUT read {} vs PT-Scan {}",
            ec.units_read,
            pt.units_read
        );
    }

    #[test]
    fn ecut_plus_reads_no_more_than_ecut() {
        let (mut store, _) = sample_store();
        let all_pairs: Vec<(Item, Item)> = (0..4u32)
            .flat_map(|a| (a + 1..4).map(move |b| (Item(a), Item(b))))
            .collect();
        store.materialize_pairs(BlockId(1), &all_pairs, None);
        store.materialize_pairs(BlockId(2), &all_pairs, None);
        let ids = [BlockId(1), BlockId(2)];
        let cands = vec![ItemSet::from_ids(&[0, 1, 2]), ItemSet::from_ids(&[0, 1])];
        let ec = count_supports(CounterKind::Ecut, &store, &ids, &cands);
        let ep = count_supports(CounterKind::EcutPlus, &store, &ids, &cands);
        assert_eq!(ec.counts, ep.counts);
        assert!(ep.units_read <= ec.units_read);
    }

    #[test]
    fn ecut_plus_without_materialized_pairs_falls_back_to_ecut() {
        let (store, _) = sample_store();
        let ids = [BlockId(1), BlockId(2)];
        let cands = vec![ItemSet::from_ids(&[0, 1, 2])];
        let ec = count_supports(CounterKind::Ecut, &store, &ids, &cands);
        let ep = count_supports(CounterKind::EcutPlus, &store, &ids, &cands);
        assert_eq!(ec, ep);
    }

    #[test]
    fn counting_respects_block_selection() {
        // The 0/1 property: only selected blocks contribute.
        let (store, blocks) = sample_store();
        let only_b2 = [BlockId(2)];
        let cands = vec![ItemSet::from_ids(&[0, 2])];
        for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
            let r = count_supports(kind, &store, &only_b2, &cands);
            assert_eq!(
                r.counts[0],
                naive_support(&cands[0], &[&blocks[1]]),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn missing_blocks_are_skipped() {
        let (store, _) = sample_store();
        let ids = [BlockId(1), BlockId(7)];
        let cands = vec![ItemSet::from_ids(&[0])];
        let r = count_supports(CounterKind::Ecut, &store, &ids, &cands);
        assert_eq!(r.counts, vec![2]);
    }

    #[test]
    fn adaptive_agrees_with_fixed_backends() {
        let (store, blocks) = sample_store();
        let ids = [BlockId(1), BlockId(2)];
        let refs: Vec<&TxBlock> = blocks.iter().collect();
        let r = count_supports(CounterKind::Adaptive, &store, &ids, &candidates());
        for (cand, &got) in candidates().iter().zip(&r.counts) {
            assert_eq!(got, naive_support(cand, &refs), "Adaptive wrong on {cand}");
        }
    }

    #[test]
    fn adaptive_picks_tid_lists_for_few_candidates_and_scan_for_many() {
        let (store, _) = sample_store();
        let ids = [BlockId(1), BlockId(2)];
        // One candidate: TID cost ≈ a few entries << scan cost.
        let few = vec![ItemSet::from_ids(&[0, 1])];
        let r_few = count_supports(CounterKind::Adaptive, &store, &ids, &few);
        let r_ecut = count_supports(CounterKind::EcutPlus, &store, &ids, &few);
        assert_eq!(r_few.units_read, r_ecut.units_read, "should use TID-lists");
        // Many (duplicated-item) candidates: TID cost exceeds the scan.
        let many: Vec<ItemSet> = (0..200).map(|_| ItemSet::from_ids(&[0, 1, 2])).collect();
        let r_many = count_supports(CounterKind::Adaptive, &store, &ids, &many);
        let r_scan = count_supports(CounterKind::PtScan, &store, &ids, &many);
        assert_eq!(r_many.units_read, r_scan.units_read, "should scan");
    }

    #[test]
    fn empty_candidates_short_circuit() {
        let (store, _) = sample_store();
        let r = count_supports(CounterKind::PtScan, &store, &[BlockId(1)], &[]);
        assert_eq!(r, CountResult::default());
    }
}
