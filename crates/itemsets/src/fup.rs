//! **FUP** (Cheung, Han, Ng, Wong; ICDE '96) — the first incremental
//! frequent-itemset maintenance algorithm, and the baseline BORDERS
//! improves on (paper §6: FUP "makes several iterations and in each
//! iteration scans the entire database").
//!
//! FUP proceeds level-wise over the *increment* `db`:
//!
//! * previously frequent k-itemsets only need their counts updated on
//!   `db` (winners keep, losers drop);
//! * a previously infrequent itemset can only become frequent overall if
//!   it is frequent *within the increment* (the FUP lemma), so new
//!   candidates are pre-filtered on `db` — but the survivors' supports on
//!   the **old database** are unknown, forcing one full scan of the old
//!   data per level with survivors.
//!
//! BORDERS' negative border removes most of those scans (the detection
//! phase knows immediately whether anything changed), and ECUT turns the
//! remaining full scans into selective TID-list reads. The
//! `ablation_fup` bench quantifies exactly this.

use crate::apriori::generate_candidates;
use crate::prefix_tree::PrefixTree;
use crate::store::TxStore;
use demon_types::{BlockId, DemonError, FastMap, Item, ItemSet, MinSupport, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Cost accounting of one FUP maintenance step.
#[derive(Clone, Copy, Debug, Default)]
pub struct FupStats {
    /// Wall-clock time of the step.
    pub time: Duration,
    /// Levels processed.
    pub levels: usize,
    /// Full scans of the *old* database (one per level with surviving new
    /// candidates) — the cost BORDERS avoids.
    pub old_db_scans: usize,
    /// Item units read, old data and increment together.
    pub units_read: u64,
    /// New candidates whose old-database support had to be counted.
    pub candidates_counted: usize,
}

/// The FUP-maintained model: the frequent itemsets with exact supports
/// (no negative border — that is BORDERS' innovation).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FupModel {
    minsup: MinSupport,
    n_items: u32,
    n: u64,
    included: Vec<BlockId>,
    freq: FastMap<ItemSet, u64>,
}

impl FupModel {
    /// The empty model.
    pub fn empty(minsup: MinSupport, n_items: u32) -> Self {
        FupModel {
            minsup,
            n_items,
            n: 0,
            included: Vec::new(),
            freq: FastMap::default(),
        }
    }

    /// The frequent itemsets with their counts.
    pub fn frequent(&self) -> &FastMap<ItemSet, u64> {
        &self.freq
    }

    /// Number of transactions covered.
    pub fn n_transactions(&self) -> u64 {
        self.n
    }

    /// Blocks covered, ascending.
    pub fn included_blocks(&self) -> &[BlockId] {
        &self.included
    }

    /// Absorbs block `id` of `store` with the FUP iteration.
    pub fn absorb_block(&mut self, store: &TxStore, id: BlockId) -> Result<FupStats> {
        if self.included.contains(&id) {
            return Err(DemonError::InvalidParameter(format!(
                "block {id} already absorbed"
            )));
        }
        let inc = store
            .try_block(id)?
            .ok_or(DemonError::UnknownBlock(id.value()))?;
        let t0 = Instant::now();
        let mut stats = FupStats::default();

        let n_inc = inc.len() as u64;
        let n_new = self.n + n_inc;
        let thresh = self.minsup.count_for(n_new);
        let thresh_inc = self.minsup.count_for(n_inc);
        let old_blocks: Vec<BlockId> = self.included.clone();

        let mut new_freq: FastMap<ItemSet, u64> = FastMap::default();
        // Level 1 candidates: the whole item universe.
        let mut candidates: Vec<ItemSet> = (0..self.n_items)
            .map(|i| ItemSet::singleton(Item(i)))
            .collect();

        while !candidates.is_empty() {
            stats.levels += 1;
            // One scan of the increment for this level's candidates.
            let mut tree = PrefixTree::build(&candidates);
            for tx in inc.records() {
                stats.units_read += tx.len() as u64;
                tree.add_transaction(tx.items());
            }
            let inc_counts = tree.into_counts();

            let mut level_winners: Vec<(ItemSet, u64)> = Vec::new();
            let mut unknown: Vec<(ItemSet, u64)> = Vec::new();
            for (cand, &inc_count) in candidates.iter().zip(&inc_counts) {
                match self.freq.get(cand) {
                    Some(&old_count) => {
                        let total = old_count + inc_count;
                        if total >= thresh {
                            level_winners.push((cand.clone(), total));
                        }
                    }
                    None => {
                        // FUP lemma: previously infrequent itemsets must be
                        // frequent within the increment to qualify at all.
                        if inc_count >= thresh_inc {
                            unknown.push((cand.clone(), inc_count));
                        }
                    }
                }
            }

            // Survivors force one full scan of the old database.
            if !unknown.is_empty() && !old_blocks.is_empty() {
                stats.old_db_scans += 1;
                stats.candidates_counted += unknown.len();
                let sets: Vec<ItemSet> = unknown.iter().map(|(s, _)| s.clone()).collect();
                let mut tree = PrefixTree::build(&sets);
                for bid in &old_blocks {
                    let block = store
                        .try_block(*bid)?
                        .ok_or(DemonError::UnknownBlock(bid.value()))?;
                    for tx in block.records() {
                        stats.units_read += tx.len() as u64;
                        tree.add_transaction(tx.items());
                    }
                }
                for ((cand, inc_count), &old_count) in
                    unknown.into_iter().zip(tree.counts())
                {
                    let total = old_count + inc_count;
                    if total >= thresh {
                        level_winners.push((cand, total));
                    }
                }
            } else if old_blocks.is_empty() {
                // Bootstrapping on the first block: increment counts are
                // total counts.
                for (cand, inc_count) in unknown {
                    if inc_count >= thresh {
                        level_winners.push((cand, inc_count));
                    }
                }
            }

            // Next level's candidates from the updated winners.
            let winner_sets: Vec<ItemSet> =
                level_winners.iter().map(|(s, _)| s.clone()).collect();
            let winner_lookup: HashSet<ItemSet> = winner_sets.iter().cloned().collect();
            new_freq.extend(level_winners);
            candidates = generate_candidates(&winner_sets, &winner_lookup);
        }

        self.freq = new_freq;
        self.n = n_new;
        let pos = self.included.partition_point(|&b| b < id);
        self.included.insert(pos, id);
        stats.time = t0.elapsed();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FrequentItemsets;

    use demon_types::{Tid, Transaction, TxBlock};

    fn block(id: u64, base: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(base + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    fn k(v: f64) -> MinSupport {
        MinSupport::new(v).unwrap()
    }

    #[test]
    fn fup_matches_batch_mining() {
        let b1 = block(1, 1, &[&[0, 1, 2], &[0, 1], &[1, 2], &[0, 2], &[3]]);
        let b2 = block(2, 100, &[&[0, 1], &[0, 1, 2], &[2, 3], &[3]]);
        let mut store = TxStore::new(4);
        store.add_block(b1);
        store.add_block(b2);
        let mut fup = FupModel::empty(k(0.3), 4);
        fup.absorb_block(&store, BlockId(1)).unwrap();
        fup.absorb_block(&store, BlockId(2)).unwrap();
        let batch =
            FrequentItemsets::mine_from(&store, &[BlockId(1), BlockId(2)], k(0.3)).unwrap();
        assert_eq!(fup.frequent(), batch.frequent());
        assert_eq!(fup.n_transactions(), 9);
    }

    #[test]
    fn fup_lemma_is_sound_on_shifted_distributions() {
        // Item 3 is absent in block 1 and dominant in block 2: FUP must
        // pick it up via the increment pre-filter and one old-DB scan.
        let b1 = block(1, 1, &[&[0, 1], &[0, 1], &[0, 1], &[0, 1]]);
        let b2 = block(2, 100, &[&[3, 0], &[3, 0], &[3, 0], &[3, 0], &[3, 0]]);
        let mut store = TxStore::new(4);
        store.add_block(b1);
        store.add_block(b2);
        let mut fup = FupModel::empty(k(0.4), 4);
        fup.absorb_block(&store, BlockId(1)).unwrap();
        let stats = fup.absorb_block(&store, BlockId(2)).unwrap();
        assert!(stats.old_db_scans >= 1, "new items force an old-DB scan");
        let batch =
            FrequentItemsets::mine_from(&store, &[BlockId(1), BlockId(2)], k(0.4)).unwrap();
        assert_eq!(fup.frequent(), batch.frequent());
    }

    #[test]
    fn stable_distribution_avoids_old_db_scans_beyond_prefilter() {
        // Identical blocks: every frequent itemset was already tracked, so
        // no new candidate survives the increment pre-filter at level > 1
        // ... except genuinely new ones, of which there are none.
        let txs: &[&[u32]] = &[&[0, 1], &[0, 1], &[2], &[0, 2]];
        let b1 = block(1, 1, txs);
        let b2 = block(2, 100, txs);
        let mut store = TxStore::new(3);
        store.add_block(b1);
        store.add_block(b2);
        let mut fup = FupModel::empty(k(0.3), 3);
        fup.absorb_block(&store, BlockId(1)).unwrap();
        let stats = fup.absorb_block(&store, BlockId(2)).unwrap();
        assert_eq!(stats.old_db_scans, 0, "no distribution change, no rescans");
        let batch =
            FrequentItemsets::mine_from(&store, &[BlockId(1), BlockId(2)], k(0.3)).unwrap();
        assert_eq!(fup.frequent(), batch.frequent());
    }

    #[test]
    fn rejects_duplicate_and_unknown_blocks() {
        let b1 = block(1, 1, &[&[0]]);
        let mut store = TxStore::new(1);
        store.add_block(b1);
        let mut fup = FupModel::empty(k(0.5), 1);
        fup.absorb_block(&store, BlockId(1)).unwrap();
        assert!(fup.absorb_block(&store, BlockId(1)).is_err());
        assert!(fup.absorb_block(&store, BlockId(7)).is_err());
    }

    #[test]
    fn fup_matches_batch_on_random_streams() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..10 {
            let mut store = TxStore::new(8);
            let mut fup = FupModel::empty(k(0.15), 8);
            let n_blocks = rng.gen_range(1..4u64);
            for id in 1..=n_blocks {
                let raw: Vec<Vec<u32>> = (0..rng.gen_range(10..40))
                    .map(|_| {
                        (0..rng.gen_range(1..5usize))
                            .map(|_| rng.gen_range(0..8u32))
                            .collect()
                    })
                    .collect();
                let slices: Vec<&[u32]> = raw.iter().map(|v| v.as_slice()).collect();
                store.add_block(block(id, id * 1000, &slices));
                fup.absorb_block(&store, BlockId(id)).unwrap();
            }
            let batch =
                FrequentItemsets::mine_from(&store, store.block_ids(), k(0.15)).unwrap();
            assert_eq!(fup.frequent(), batch.frequent(), "trial {trial}");
        }
    }
}
