//! Frequent-itemset mining and incremental maintenance for DEMON.
//!
//! This crate implements every piece of the paper's frequent-itemset stack:
//!
//! * [`apriori`] — level-wise mining from scratch, producing the set of
//!   frequent itemsets `L(D, κ)` **and** the negative border `NB⁻(D, κ)`
//!   that the BORDERS algorithm maintains;
//! * [`prefix_tree`] — the candidate prefix tree of Mueller '95 used by the
//!   **PT-Scan** counting procedure (the baseline BORDERS update phase);
//! * [`tidlist`] — per-block TID-lists of items and 2-itemsets, exploiting
//!   the paper's *additivity* and *0/1* properties of systematic block
//!   evolution;
//! * [`counter`] — the pluggable support-counting backends compared in
//!   Figures 2–7: [`CounterKind::PtScan`], [`CounterKind::Ecut`] and
//!   [`CounterKind::EcutPlus`];
//! * [`store`] — [`TxStore`], the transactional + TID-list representation
//!   of the evolving database;
//! * [`persist`] — crash-safe on-disk persistence of the store (atomic
//!   framed writes, checksummed manifest, [`RecoveryPolicy`] salvage and
//!   the [`verify_store`] fsck);
//! * [`model`] — [`FrequentItemsets`], the maintained model
//!   (`L ∪ NB⁻` with exact supports), including the BORDERS **detection**
//!   and **update** phases for block addition and the deletion-capable
//!   variant (`AuM`) used in the GEMM ablation.
//!
//! # Paper → module map
//!
//! | Paper section | Concept | Module / type |
//! |---|---|---|
//! | §3.1.1 | BORDERS detection + update phases | [`model`] |
//! | §3.1.1 | negative border `NB⁻(D, κ)` | [`model::FrequentItemsets::border`] |
//! | §3.1.1 | PT-Scan counting (Mueller '95 tree) | [`prefix_tree`], [`counter`] |
//! | §3.1.1 | ECUT / ECUT+ TID-list counting | [`tidlist`], [`counter`] |
//! | §3.1.1 | FUP comparator (Cheung et al. '96) | [`fup`] |
//! | §5 | calendric association rules | [`calendric`], [`rules`] |
//! | §6.1 | level-wise mining from scratch | [`apriori`] |
//! | — (engineering) | crash-safe store persistence | [`persist`], [`codec`] |
//!
//! Support counting shards across threads (candidate ranges for
//! ECUT/ECUT+, transaction ranges for PT-Scan) via
//! `demon_types::parallel`; counts are exact integer sums merged in
//! shard order, so every backend returns bit-identical results at any
//! thread count ([`count_supports_with`]).
//!
//! # Example
//!
//! Mine a block, then maintain the model incrementally as a second block
//! arrives, counting new candidates with ECUT:
//!
//! ```
//! use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
//! use demon_types::{Block, BlockId, Item, ItemSet, MinSupport, Tid, Transaction};
//!
//! let tx = |tid: u64, items: &[u32]| {
//!     Transaction::new(Tid(tid), items.iter().map(|&i| Item(i)).collect())
//! };
//! let mut store = TxStore::new(4);
//! store.add_block(Block::new(
//!     BlockId(1),
//!     vec![tx(1, &[0, 1]), tx(2, &[0, 1]), tx(3, &[2])],
//! ));
//!
//! let minsup = MinSupport::new(0.4)?;
//! let mut model = FrequentItemsets::mine_from(&store, &[BlockId(1)], minsup)?;
//! assert!(model.is_frequent(&ItemSet::from_ids(&[0, 1])));
//!
//! // A new block shifts the distribution toward item 3.
//! store.add_block(Block::new(
//!     BlockId(2),
//!     vec![tx(4, &[3]), tx(5, &[3]), tx(6, &[3]), tx(7, &[3])],
//! ));
//! let stats = model.absorb_block(&store, BlockId(2), CounterKind::Ecut)?;
//! assert!(model.is_frequent(&ItemSet::from_ids(&[3])));
//! assert!(!model.is_frequent(&ItemSet::from_ids(&[0, 1]))); // diluted away
//! assert!(stats.promoted >= 1);
//! # Ok::<(), demon_types::DemonError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apriori;
pub mod calendric;
pub mod codec;
pub mod counter;
pub mod fup;
pub mod hash_tree;
pub mod model;
pub mod persist;
pub mod prefix_tree;
pub mod rules;
pub mod store;
pub mod tidlist;

pub use calendric::{calendric_rules, Calendar, CalendricRule};
pub use counter::{
    count_supports, count_supports_sharded, count_supports_with, CountResult, CounterKind,
};
pub use fup::{FupModel, FupStats};
pub use hash_tree::HashTree;
pub use model::{FrequentItemsets, MaintenanceStats};
pub use persist::{
    load_store, load_store_with, save_store, verify_store, RecoveryPolicy, RecoveryReport,
    VerifyReport, STORE_FORMAT_VERSION,
};
pub use prefix_tree::{FlatPrefixTree, PrefixTree};
pub use rules::{derive_rules, Rule};
pub use store::{BlockRef, ListsRef, MaterializeStats, TidListsView, TxStore};
pub use tidlist::{
    intersect_all, intersect_count, intersect_into, kernel_for, BlockTidLists, IntersectKernel,
    IntersectScratch, TidListStore,
};
