//! The maintained frequent-itemset model: `L(D, κ) ∪ NB⁻(D, κ)` with exact
//! supports, evolved by the **BORDERS** algorithm (Feldman et al. '97;
//! Thomas et al. '97) with the paper's pluggable update-phase counters.
//!
//! Maintenance proceeds in two phases (paper §3.1.1):
//!
//! 1. **Detection** — when block `D_{t+1}` arrives (or is retired, for the
//!    deletion-capable `AuM` variant of §3.2.4), scan *only that block*
//!    with a prefix tree over all tracked itemsets and adjust their counts.
//! 2. **Update** — re-threshold; itemsets crossing the border move between
//!    `L` and `NB⁻`. Newly frequent border itemsets trigger candidate
//!    generation (prefix join against `L`, Apriori prune); the candidates'
//!    supports over the *whole* selected dataset are counted by the chosen
//!    [`CounterKind`] — this is where ECUT/ECUT+ beat PT-Scan — and the
//!    cascade repeats until no new frequent itemsets appear.

use crate::apriori;
use crate::counter::{count_supports, count_supports_sharded, CountResult, CounterKind};
use crate::prefix_tree::PrefixTree;
use crate::store::TxStore;
use demon_types::{
    obs, BlockId, DemonError, FastMap, FastSet, Item, ItemSet, MinSupport, Result, TxBlock,
};
use serde::{Deserialize, Serialize};

use std::time::{Duration, Instant};

/// Cost breakdown of one maintenance step, mirroring the detection/update
/// split reported in Figures 4–7.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaintenanceStats {
    /// Wall-clock time of the detection phase.
    pub detection_time: Duration,
    /// Wall-clock time of the update phase (candidate counting + cascade).
    pub update_time: Duration,
    /// Item/TID units read during detection.
    pub detection_units: u64,
    /// Item/TID units read during the update phase.
    pub update_units: u64,
    /// Number of new candidate itemsets counted in the update phase.
    pub candidates_counted: usize,
    /// Itemsets promoted from the negative border into `L`.
    pub promoted: usize,
    /// Itemsets demoted from `L` into the negative border.
    pub demoted: usize,
}

impl MaintenanceStats {
    /// Total wall-clock time of the step.
    pub fn total_time(&self) -> Duration {
        self.detection_time + self.update_time
    }

    /// Accumulates another step's stats into this one.
    pub fn merge(&mut self, other: &MaintenanceStats) {
        self.detection_time += other.detection_time;
        self.update_time += other.update_time;
        self.detection_units += other.detection_units;
        self.update_units += other.update_units;
        self.candidates_counted += other.candidates_counted;
        self.promoted += other.promoted;
        self.demoted += other.demoted;
    }
}

/// Serializes itemset-keyed maps as (sorted) pair sequences, since JSON
/// map keys must be strings.
mod map_serde {
    use super::*;

    pub fn to_value(map: &FastMap<ItemSet, u64>) -> serde::Value {
        let mut pairs: Vec<(&ItemSet, &u64)> = map.iter().collect();
        pairs.sort();
        serde::Value::Array(pairs.iter().map(serde::Serialize::to_value).collect())
    }

    pub fn from_value(
        v: &serde::Value,
    ) -> std::result::Result<FastMap<ItemSet, u64>, serde::de::Error> {
        let pairs: Vec<(ItemSet, u64)> = serde::Deserialize::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

/// The long-lived detection-phase index: a prefix tree over every
/// tracked itemset (`L ∪ NB⁻`), extended in place as the cascade creates
/// candidates. Entries for itemsets that have since been dropped from
/// the model go stale (their counts are simply ignored); the tree is
/// rebuilt once stale entries outnumber live ones.
#[derive(Clone, Debug)]
struct Detector {
    tree: PrefixTree,
    sets: Vec<ItemSet>,
}

impl Detector {
    fn build(sets: Vec<ItemSet>) -> Detector {
        let tree = PrefixTree::build(&sets);
        Detector { tree, sets }
    }

    fn insert(&mut self, set: &ItemSet) {
        let slot = self.tree.insert_candidate(set);
        if slot == self.sets.len() {
            self.sets.push(set.clone());
        }
    }
}

/// The frequent-itemset model of a block selection: `L` and `NB⁻` with
/// exact absolute supports, plus the identifiers of the selected blocks.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrequentItemsets {
    minsup: MinSupport,
    n_items: u32,
    /// Transactions in the selected blocks.
    n: u64,
    /// Blocks this model was extracted from (ascending).
    included: Vec<BlockId>,
    #[serde(with = "map_serde")]
    freq: FastMap<ItemSet, u64>,
    #[serde(with = "map_serde")]
    border: FastMap<ItemSet, u64>,
    /// Cached detection index; rebuilt lazily after deserialization.
    #[serde(skip)]
    detector: Option<Detector>,
}

impl FrequentItemsets {
    /// The empty model over an `n_items` universe: nothing is frequent and
    /// the negative border holds every singleton with count 0. Absorbing
    /// blocks into the empty model reproduces mining from scratch through
    /// the BORDERS cascade — this is GEMM's `fresh` model.
    pub fn empty(minsup: MinSupport, n_items: u32) -> Self {
        let border = (0..n_items)
            .map(|i| (ItemSet::singleton(Item(i)), 0u64))
            .collect();
        FrequentItemsets {
            minsup,
            n_items,
            n: 0,
            included: Vec::new(),
            freq: FastMap::default(),
            border,
            detector: None,
        }
    }

    /// Batch-mines the model directly over blocks (no store needed) —
    /// used by the FOCUS deviation machinery, which models single blocks.
    pub fn mine_blocks(
        blocks: &[&demon_types::TxBlock],
        n_items: u32,
        minsup: MinSupport,
    ) -> Self {
        let mined = apriori::mine(blocks, n_items, minsup);
        let mut included: Vec<BlockId> = blocks.iter().map(|b| b.id()).collect();
        included.sort_unstable();
        included.dedup();
        FrequentItemsets {
            minsup,
            n_items,
            n: mined.n,
            included,
            freq: mined.frequent.into_iter().collect(),
            border: mined.border.into_iter().collect(),
            detector: None,
        }
    }

    /// Batch-mines the model over the given blocks of `store` with Apriori
    /// (faster than absorbing block-by-block when history is available).
    pub fn mine_from(store: &TxStore, ids: &[BlockId], minsup: MinSupport) -> Result<Self> {
        // Pin every block for the duration of the mine (pinned blocks
        // cannot be evicted by a memory-bounded store).
        let mut guards = Vec::with_capacity(ids.len());
        for &id in ids {
            guards.push(
                store
                    .try_block(id)?
                    .ok_or(DemonError::UnknownBlock(id.value()))?,
            );
        }
        let blocks: Vec<&TxBlock> = guards.iter().map(|g| &**g).collect();
        let mined = apriori::mine(&blocks, store.n_items(), minsup);
        let mut included: Vec<BlockId> = ids.to_vec();
        included.sort_unstable();
        included.dedup();
        Ok(FrequentItemsets {
            minsup,
            n_items: store.n_items(),
            n: mined.n,
            included,
            freq: mined.frequent.into_iter().collect(),
            border: mined.border.into_iter().collect(),
            detector: None,
        })
    }

    /// The minimum-support threshold.
    pub fn min_support(&self) -> MinSupport {
        self.minsup
    }

    /// Number of transactions in the selected blocks.
    pub fn n_transactions(&self) -> u64 {
        self.n
    }

    /// The absolute support count an itemset needs to be frequent.
    pub fn threshold(&self) -> u64 {
        self.minsup.count_for(self.n)
    }

    /// The blocks this model is extracted from, ascending.
    pub fn included_blocks(&self) -> &[BlockId] {
        &self.included
    }

    /// Whether a block is part of the selection.
    pub fn includes(&self, id: BlockId) -> bool {
        self.included.binary_search(&id).is_ok()
    }

    /// The frequent itemsets with their support counts.
    pub fn frequent(&self) -> &FastMap<ItemSet, u64> {
        &self.freq
    }

    /// The negative border with its support counts.
    pub fn border(&self) -> &FastMap<ItemSet, u64> {
        &self.border
    }

    /// Number of frequent itemsets.
    pub fn n_frequent(&self) -> usize {
        self.freq.len()
    }

    /// Whether `itemset` is currently frequent.
    pub fn is_frequent(&self, itemset: &ItemSet) -> bool {
        self.freq.contains_key(itemset)
    }

    /// Support count of a *tracked* itemset (frequent or border).
    pub fn support(&self, itemset: &ItemSet) -> Option<u64> {
        self.freq
            .get(itemset)
            .or_else(|| self.border.get(itemset))
            .copied()
    }

    /// Support as a fraction of the selected transactions.
    pub fn support_fraction(&self, itemset: &ItemSet) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        self.support(itemset).map(|c| c as f64 / self.n as f64)
    }

    /// Frequent itemsets sorted for deterministic output.
    pub fn frequent_sorted(&self) -> Vec<(ItemSet, u64)> {
        let mut v: Vec<(ItemSet, u64)> =
            self.freq.iter().map(|(s, c)| (s.clone(), *c)).collect();
        v.sort();
        v
    }

    /// The frequent 2-itemsets ordered by descending support — the ECUT+
    /// materialization priority list (paper §3.1.1: "an itemset with a
    /// higher overall support is chosen before another with lower").
    pub fn frequent_pairs_by_support(&self) -> Vec<(Item, Item)> {
        let mut pairs: Vec<(u64, Item, Item)> = self
            .freq
            .iter()
            .filter(|(s, _)| s.len() == 2)
            .map(|(s, c)| (*c, s.items()[0], s.items()[1]))
            .collect();
        pairs.sort_unstable_by(|a, b| b.cmp(a));
        pairs.into_iter().map(|(_, a, b)| (a, b)).collect()
    }

    /// **BORDERS block addition.** Adjusts the model to include block `id`
    /// of `store`, counting new candidates with `counter`.
    pub fn absorb_block(
        &mut self,
        store: &TxStore,
        id: BlockId,
        counter: CounterKind,
    ) -> Result<MaintenanceStats> {
        if self.includes(id) {
            return Err(DemonError::InvalidParameter(format!(
                "block {id} already absorbed"
            )));
        }
        let block = store
            .try_block(id)?
            .ok_or(DemonError::UnknownBlock(id.value()))?;

        let mut stats = MaintenanceStats::default();

        // Detection phase: scan only the new block over all tracked sets,
        // using the long-lived prefix tree.
        let t0 = Instant::now();
        self.detect(&block, &mut stats, 1);
        self.n += block.len() as u64;
        let pos = self.included.partition_point(|&b| b < id);
        self.included.insert(pos, id);
        stats.detection_time = t0.elapsed();
        // Release the pin before the update phase re-pins the selection.
        drop(block);

        // Update phase.
        let t1 = Instant::now();
        self.cascade(store, counter, &mut stats);
        stats.update_time = t1.elapsed();
        Ok(stats)
    }

    /// **BORDERS block addition over a sharded store family.** Identical
    /// state machine to [`Self::absorb_block`], except the new block is
    /// located in whichever shard owns it and update-phase candidates are
    /// counted with [`count_supports_sharded`] — per-shard exact counts
    /// summed index-wise, so the resulting model is byte-identical to
    /// absorbing the same stream into one store.
    pub fn absorb_block_sharded(
        &mut self,
        stores: &[&TxStore],
        id: BlockId,
        counter: CounterKind,
    ) -> Result<MaintenanceStats> {
        if self.includes(id) {
            return Err(DemonError::InvalidParameter(format!(
                "block {id} already absorbed"
            )));
        }
        let mut owner = None;
        for store in stores {
            if let Some(block) = store.try_block(id)? {
                owner = Some(block);
                break;
            }
        }
        let block = owner.ok_or(DemonError::UnknownBlock(id.value()))?;

        let mut stats = MaintenanceStats::default();
        let t0 = Instant::now();
        self.detect(&block, &mut stats, 1);
        self.n += block.len() as u64;
        let pos = self.included.partition_point(|&b| b < id);
        self.included.insert(pos, id);
        stats.detection_time = t0.elapsed();
        drop(block);

        let t1 = Instant::now();
        self.cascade_counted(&mut stats, |ids, cands| {
            count_supports_sharded(counter, stores, ids, cands)
        });
        stats.update_time = t1.elapsed();
        Ok(stats)
    }

    /// **`AuM` block deletion** (paper §3.2.4). Adjusts the model to
    /// exclude block `id`, which must still be present in `store` (its
    /// transactions are scanned to decrement counts before retirement).
    pub fn remove_block(
        &mut self,
        store: &TxStore,
        id: BlockId,
        counter: CounterKind,
    ) -> Result<MaintenanceStats> {
        if !self.includes(id) {
            return Err(DemonError::InvalidParameter(format!(
                "block {id} not part of the model"
            )));
        }
        let block = store
            .try_block(id)?
            .ok_or(DemonError::UnknownBlock(id.value()))?;

        let mut stats = MaintenanceStats::default();
        let t0 = Instant::now();
        self.detect(&block, &mut stats, -1);
        self.n -= block.len() as u64;
        self.included.retain(|&b| b != id);
        stats.detection_time = t0.elapsed();
        drop(block);

        let t1 = Instant::now();
        self.cascade(store, counter, &mut stats);
        stats.update_time = t1.elapsed();
        Ok(stats)
    }

    /// Changes the minimum support threshold. Raising κ only re-thresholds
    /// (L(D, κ') ⊆ L(D, κ)); lowering κ runs the full BORDERS cascade with
    /// the chosen counter (paper §3.1.1).
    pub fn set_min_support(
        &mut self,
        store: &TxStore,
        minsup: MinSupport,
        counter: CounterKind,
    ) -> MaintenanceStats {
        let mut stats = MaintenanceStats::default();
        self.minsup = minsup;
        let t = Instant::now();
        self.cascade(store, counter, &mut stats);
        stats.update_time = t.elapsed();
        stats
    }

    /// Counts every tracked itemset on one block with the cached prefix
    /// tree and applies `sign × count` to the stored supports.
    fn detect(&mut self, block: &demon_types::TxBlock, stats: &mut MaintenanceStats, sign: i64) {
        self.ensure_detector();
        let det = self.detector.as_mut().expect("detector just ensured");
        det.tree.reset();
        for tx in block.records() {
            stats.detection_units += tx.len() as u64;
            det.tree.add_transaction(tx.items());
        }
        let (freq, border) = (&mut self.freq, &mut self.border);
        for (set, &delta) in det.sets.iter().zip(det.tree.counts()) {
            if delta == 0 {
                continue;
            }
            // Stale detector entries (itemsets dropped from the model)
            // match neither map and are ignored.
            if let Some(c) = freq.get_mut(set).or_else(|| border.get_mut(set)) {
                *c = (*c as i64 + sign * delta as i64).max(0) as u64;
            }
        }
    }

    /// Pre-builds the detection index. Absorbing a block builds it on
    /// demand anyway; benchmarks call this to keep the one-time index
    /// construction out of the per-block detection timing.
    pub fn warm_detector(&mut self) {
        self.ensure_detector();
    }

    /// Builds the detector on first use (or after deserialization), and
    /// rebuilds it when stale entries outnumber live ones.
    fn ensure_detector(&mut self) {
        let live = self.freq.len() + self.border.len();
        let needs_rebuild = match &self.detector {
            None => true,
            Some(det) => det.sets.len() > 2 * live.max(1),
        };
        if needs_rebuild {
            let sets: Vec<ItemSet> = self
                .freq
                .keys()
                .chain(self.border.keys())
                .cloned()
                .collect();
            self.detector = Some(Detector::build(sets));
        }
    }

    /// The shared update-phase cascade: demote, prune, promote, generate
    /// and count candidates, repeat.
    fn cascade(&mut self, store: &TxStore, counter: CounterKind, stats: &mut MaintenanceStats) {
        self.cascade_counted(stats, |ids, cands| {
            count_supports(counter, store, ids, cands)
        });
    }

    /// The cascade, generic over the candidate-counting source. The closure
    /// receives the model's included block ids and the candidate batch and
    /// must return exact supports over exactly those blocks — this is what
    /// lets a sharded store family substitute [`count_supports_sharded`]
    /// without touching the BORDERS state machine.
    fn cascade_counted<F>(&mut self, stats: &mut MaintenanceStats, mut count: F)
    where
        F: FnMut(&[BlockId], &[ItemSet]) -> CountResult,
    {
        let thresh = self.threshold();

        // Demotions: frequent itemsets that dropped below the threshold
        // move into the border; border itemsets that now have an
        // infrequent proper subset are no longer border members.
        let demoted: Vec<ItemSet> = self
            .freq
            .iter()
            .filter(|&(_, &c)| c < thresh)
            .map(|(s, _)| s.clone())
            .collect();
        if !demoted.is_empty() {
            stats.demoted += demoted.len();
            obs::add(obs::Counter::BorderDemotions, demoted.len() as u64);
            for set in &demoted {
                if let Some(c) = self.freq.remove(set) {
                    self.border.insert(set.clone(), c);
                }
            }
            self.border.retain(|set, _| {
                !demoted
                    .iter()
                    .any(|d| d.is_proper_subset_of(set))
            });
        }

        // Promotion loop.
        loop {
            let promoted: Vec<ItemSet> = self
                .border
                .iter()
                .filter(|&(_, &c)| c >= thresh)
                .map(|(s, _)| s.clone())
                .collect();
            if promoted.is_empty() {
                break;
            }
            stats.promoted += promoted.len();
            obs::add(obs::Counter::BorderPromotions, promoted.len() as u64);
            for set in &promoted {
                if let Some(c) = self.border.remove(set) {
                    self.freq.insert(set.clone(), c);
                }
            }

            // Candidate generation: a set becomes a candidate exactly when
            // its *last* maximal subset turns frequent, so every new
            // candidate is a one-item extension of some promoted set.
            // Enumerating `P ∪ {i}` over the item universe and
            // Apriori-pruning is complete — unlike a prefix join of the
            // promoted sets against `L`, which misses candidates whose
            // promoted subset is not a prefix parent.
            let mut candidates: FastSet<ItemSet> = FastSet::default();
            for x in &promoted {
                for i in 0..self.n_items {
                    let Some(cand) = x.with_item(Item(i)) else {
                        continue;
                    };
                    if self.freq.contains_key(&cand)
                        || self.border.contains_key(&cand)
                        || candidates.contains(&cand)
                    {
                        continue;
                    }
                    if cand
                        .proper_maximal_subsets()
                        .all(|s| self.freq.contains_key(&s))
                    {
                        candidates.insert(cand);
                    }
                }
            }
            if candidates.is_empty() {
                continue;
            }
            let candidates: Vec<ItemSet> = candidates.into_iter().collect();
            stats.candidates_counted += candidates.len();
            let counted = count(&self.included, &candidates);
            stats.update_units += counted.units_read;
            for (cand, count) in candidates.into_iter().zip(counted.counts) {
                // Frequent candidates will be promoted next round and then
                // generate further candidates — the paper's "and so on
                // until no new frequent itemsets are found".
                if let Some(det) = &mut self.detector {
                    det.insert(&cand);
                }
                self.border.insert(cand, count);
            }
        }
    }

    /// Checks the structural invariants of the model against `store`
    /// (exactness of counts, border definition, anti-monotonicity).
    /// Test-support; panics with a description on violation.
    pub fn check_invariants(&self, store: &TxStore) {
        let thresh = self.threshold();
        let guards: Vec<_> = self
            .included
            .iter()
            .map(|id| store.block(*id).expect("included block in store"))
            .collect();
        let blocks: Vec<&TxBlock> = guards.iter().map(|g| &**g).collect();
        let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
        assert_eq!(total, self.n, "transaction count drifted");
        for (set, &c) in &self.freq {
            assert!(c >= thresh, "{set} in L but count {c} < {thresh}");
            assert_eq!(c, apriori::naive_support(set, &blocks), "{set} count wrong");
        }
        for (set, &c) in &self.border {
            assert!(c < thresh, "{set} in NB⁻ but count {c} ≥ {thresh}");
            assert_eq!(c, apriori::naive_support(set, &blocks), "{set} count wrong");
            for sub in set.proper_maximal_subsets() {
                assert!(
                    sub.is_empty() || self.freq.contains_key(&sub),
                    "border member {set} has non-frequent subset {sub}"
                );
            }
        }
        // All singletons must remain tracked.
        for i in 0..self.n_items {
            let s = ItemSet::singleton(Item(i));
            assert!(
                self.freq.contains_key(&s) || self.border.contains_key(&s),
                "singleton {s} lost"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Tid, Transaction, TxBlock};

    fn block(id: u64, base: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(base + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    fn k(v: f64) -> MinSupport {
        MinSupport::new(v).unwrap()
    }

    /// Mining from scratch and incrementally absorbing must agree.
    fn assert_same_model(a: &FrequentItemsets, b: &FrequentItemsets) {
        let norm = |m: &FrequentItemsets| {
            let mut v: Vec<(ItemSet, u64)> =
                m.frequent().iter().map(|(s, c)| (s.clone(), *c)).collect();
            v.sort();
            v
        };
        assert_eq!(norm(a), norm(b), "frequent sets differ");
        assert_eq!(a.n_transactions(), b.n_transactions());
    }

    #[test]
    fn absorb_from_empty_equals_batch_mine() {
        let b1 = block(1, 1, &[&[0, 1, 2], &[0, 1], &[1, 2], &[0, 2], &[3]]);
        let b2 = block(2, 100, &[&[0, 1], &[0, 1, 2], &[2, 3], &[3]]);
        let mut store = TxStore::new(4);
        store.add_block(b1);
        store.add_block(b2);
        for counter in [CounterKind::PtScan, CounterKind::Ecut] {
            let mut inc = FrequentItemsets::empty(k(0.3), 4);
            inc.absorb_block(&store, BlockId(1), counter).unwrap();
            inc.check_invariants(&store);
            inc.absorb_block(&store, BlockId(2), counter).unwrap();
            inc.check_invariants(&store);
            let batch =
                FrequentItemsets::mine_from(&store, &[BlockId(1), BlockId(2)], k(0.3)).unwrap();
            assert_same_model(&inc, &batch);
        }
    }

    #[test]
    fn absorb_detects_newly_frequent_itemsets() {
        // Item 3 is rare in block 1 but dominant in block 2.
        let b1 = block(1, 1, &[&[0, 1], &[0, 1], &[0, 1], &[0, 1], &[3]]);
        let b2 = block(2, 100, &[&[3, 0], &[3, 0], &[3, 0], &[3, 0], &[3, 0]]);
        let mut store = TxStore::new(4);
        store.add_block(b1);
        store.add_block(b2);
        let mut m = FrequentItemsets::empty(k(0.4), 4);
        m.absorb_block(&store, BlockId(1), CounterKind::Ecut).unwrap();
        assert!(!m.is_frequent(&ItemSet::from_ids(&[3])));
        let stats = m
            .absorb_block(&store, BlockId(2), CounterKind::Ecut)
            .unwrap();
        assert!(m.is_frequent(&ItemSet::from_ids(&[3])));
        assert!(m.is_frequent(&ItemSet::from_ids(&[0, 3])));
        assert!(stats.promoted > 0);
        assert!(stats.candidates_counted > 0);
        m.check_invariants(&store);
    }

    #[test]
    fn absorb_demotes_stale_itemsets() {
        let b1 = block(1, 1, &[&[0, 1], &[0, 1], &[0, 1]]);
        let b2 = block(2, 100, &[&[2], &[2], &[2], &[2], &[2], &[2]]);
        let mut store = TxStore::new(3);
        store.add_block(b1);
        store.add_block(b2);
        let mut m = FrequentItemsets::empty(k(0.5), 3);
        m.absorb_block(&store, BlockId(1), CounterKind::PtScan).unwrap();
        assert!(m.is_frequent(&ItemSet::from_ids(&[0, 1])));
        let stats = m
            .absorb_block(&store, BlockId(2), CounterKind::PtScan)
            .unwrap();
        assert!(!m.is_frequent(&ItemSet::from_ids(&[0, 1])));
        assert!(m.is_frequent(&ItemSet::from_ids(&[2])));
        assert!(stats.demoted > 0);
        m.check_invariants(&store);
    }

    #[test]
    fn remove_block_inverts_absorb() {
        let b1 = block(1, 1, &[&[0, 1, 2], &[0, 1], &[1, 2], &[0, 2]]);
        let b2 = block(2, 100, &[&[2, 0], &[2], &[2, 1]]);
        let mut store = TxStore::new(3);
        store.add_block(b1);
        store.add_block(b2);
        let mut m = FrequentItemsets::empty(k(0.4), 3);
        m.absorb_block(&store, BlockId(1), CounterKind::Ecut).unwrap();
        let reference = m.clone();
        m.absorb_block(&store, BlockId(2), CounterKind::Ecut).unwrap();
        m.remove_block(&store, BlockId(2), CounterKind::Ecut).unwrap();
        m.check_invariants(&store);
        assert_same_model(&m, &reference);
    }

    #[test]
    fn absorb_rejects_duplicates_and_unknown_blocks() {
        let b1 = block(1, 1, &[&[0]]);
        let mut store = TxStore::new(1);
        store.add_block(b1);
        let mut m = FrequentItemsets::empty(k(0.5), 1);
        m.absorb_block(&store, BlockId(1), CounterKind::Ecut).unwrap();
        assert!(m.absorb_block(&store, BlockId(1), CounterKind::Ecut).is_err());
        assert!(m.absorb_block(&store, BlockId(9), CounterKind::Ecut).is_err());
        assert!(m.remove_block(&store, BlockId(9), CounterKind::Ecut).is_err());
    }

    #[test]
    fn raising_min_support_shrinks_l() {
        let b1 = block(
            1,
            1,
            &[&[0, 1], &[0, 1], &[0, 2], &[0], &[1], &[2], &[0, 1, 2]],
        );
        let mut store = TxStore::new(3);
        store.add_block(b1);
        let mut m = FrequentItemsets::empty(k(0.2), 3);
        m.absorb_block(&store, BlockId(1), CounterKind::Ecut).unwrap();
        let before = m.n_frequent();
        m.set_min_support(&store, k(0.5), CounterKind::Ecut);
        m.check_invariants(&store);
        assert!(m.n_frequent() < before);
        let batch = FrequentItemsets::mine_from(&store, &[BlockId(1)], k(0.5)).unwrap();
        assert_same_model(&m, &batch);
    }

    #[test]
    fn lowering_min_support_grows_l() {
        let b1 = block(
            1,
            1,
            &[&[0, 1], &[0, 1], &[0, 2], &[0], &[1], &[2], &[0, 1, 2]],
        );
        let mut store = TxStore::new(3);
        store.add_block(b1);
        let mut m = FrequentItemsets::empty(k(0.5), 3);
        m.absorb_block(&store, BlockId(1), CounterKind::Ecut).unwrap();
        m.set_min_support(&store, k(0.15), CounterKind::Ecut);
        m.check_invariants(&store);
        let batch = FrequentItemsets::mine_from(&store, &[BlockId(1)], k(0.15)).unwrap();
        assert_same_model(&m, &batch);
    }

    #[test]
    fn detector_rebuild_after_massive_border_shrink() {
        // Build a model with a wide border, then raise κ so the border
        // collapses: the cached detector becomes mostly stale and must be
        // rebuilt on the next absorb without corrupting counts.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let raw: Vec<Vec<u32>> = (0..300)
            .map(|_| (0..4).map(|_| rng.gen_range(0..16u32)).collect())
            .collect();
        let slices: Vec<&[u32]> = raw.iter().map(|v| v.as_slice()).collect();
        let b1 = block(1, 1, &slices);
        let b2 = block(2, 1000, &[&[0, 1], &[0, 1], &[2, 3]]);
        let mut store = TxStore::new(16);
        store.add_block(b1);
        store.add_block(b2);
        let mut m = FrequentItemsets::empty(k(0.02), 16);
        m.absorb_block(&store, BlockId(1), CounterKind::Ecut).unwrap();
        // Raising κ demotes almost everything, leaving stale detector slots.
        m.set_min_support(&store, k(0.45), CounterKind::Ecut);
        m.absorb_block(&store, BlockId(2), CounterKind::Ecut).unwrap();
        m.check_invariants(&store);
        let batch =
            FrequentItemsets::mine_from(&store, &[BlockId(1), BlockId(2)], k(0.45)).unwrap();
        assert_same_model(&m, &batch);
    }

    #[test]
    fn merged_blocks_mine_like_their_parts() {
        // §2.1 time hierarchy: coarsening blocks must not change the model.
        let b1 = block(1, 1, &[&[0, 1], &[2]]);
        let b2 = block(2, 100, &[&[0, 1], &[0]]);
        let mut fine = TxStore::new(3);
        fine.add_block(b1.clone());
        fine.add_block(b2.clone());
        let merged = demon_types::Block::merge(BlockId(1), vec![b1, b2]);
        let mut coarse = TxStore::new(3);
        coarse.add_block(merged);
        let a = FrequentItemsets::mine_from(&fine, &[BlockId(1), BlockId(2)], k(0.3)).unwrap();
        let b = FrequentItemsets::mine_from(&coarse, &[BlockId(1)], k(0.3)).unwrap();
        assert_eq!(a.frequent(), b.frequent());
    }

    #[test]
    fn model_roundtrips_through_serde() {
        let b1 = block(1, 1, &[&[0, 1], &[0, 1], &[2]]);
        let mut store = TxStore::new(3);
        store.add_block(b1);
        let mut m = FrequentItemsets::empty(k(0.4), 3);
        m.absorb_block(&store, BlockId(1), CounterKind::Ecut).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: FrequentItemsets = serde_json::from_str(&json).unwrap();
        assert_eq!(back.frequent(), m.frequent());
        assert_eq!(back.border(), m.border());
        assert_eq!(back.n_transactions(), m.n_transactions());
        assert_eq!(back.included_blocks(), m.included_blocks());
    }

    #[test]
    fn frequent_pairs_ordered_by_support() {
        let b1 = block(
            1,
            1,
            &[&[0, 1], &[0, 1], &[0, 1], &[1, 2], &[1, 2], &[0, 2]],
        );
        let mut store = TxStore::new(3);
        store.add_block(b1);
        let m = FrequentItemsets::mine_from(&store, &[BlockId(1)], k(0.2)).unwrap();
        let pairs = m.frequent_pairs_by_support();
        assert_eq!(pairs[0], (Item(0), Item(1)));
        assert!(pairs.contains(&(Item(1), Item(2))));
    }

    #[test]
    fn support_fraction_matches_counts() {
        let b1 = block(1, 1, &[&[0], &[0], &[1]]);
        let mut store = TxStore::new(2);
        store.add_block(b1);
        let m = FrequentItemsets::mine_from(&store, &[BlockId(1)], k(0.3)).unwrap();
        assert!(
            (m.support_fraction(&ItemSet::from_ids(&[0])).unwrap() - 2.0 / 3.0).abs() < 1e-12
        );
        let empty = FrequentItemsets::empty(k(0.3), 2);
        assert_eq!(empty.support_fraction(&ItemSet::from_ids(&[0])), None);
    }
}
