//! `demon-store` — the memory-bounded block storage engine shared by
//! every DEMON maintainer.
//!
//! DEMON's premise is an *unbounded* stream of blocks, so no maintainer
//! may assume the full block history fits in RAM. This crate provides the
//! one storage abstraction they all share: a [`BlockStore`] maps a
//! [`BlockId`] to a value of any [`Spillable`] type and keeps only a
//! bounded *residency set* in memory. Everything else lives on disk in
//! the crash-safe framed format from [`demon_types::durable`] and is
//! transparently re-loaded on access.
//!
//! # Backends
//!
//! | Backend | Residency | Used for |
//! |---|---|---|
//! | in-memory | everything stays resident, nothing is ever evicted | the historical default; small stores |
//! | spill + [`SpillPolicy::Budget`] | LRU set bounded by a byte budget | `--memory-budget` replay of every maintainer |
//! | spill + [`SpillPolicy::Always`] | nothing unpinned stays resident | GEMM's disk model shelf (write-through) |
//!
//! # Pinning
//!
//! [`BlockStore::get`] returns a [`Pinned`] guard. While any guard for a
//! block is alive the block cannot be evicted (a counting pass pins every
//! block it reads so supports are computed against stable data) and
//! cannot be physically removed — [`BlockStore::remove`] of a pinned
//! block is *deferred*: the block disappears from [`BlockStore::ids`]
//! immediately and is reclaimed when the last pin drops.
//!
//! # Determinism
//!
//! The engine participates in the PR 3 observability contract: counter
//! totals must not depend on the thread count. All bookkeeping that
//! could be reordered by parallel execution — hit/miss counters, LRU
//! clock advances, evictions, the resident-bytes high-water mark — is
//! *frozen* while [`demon_types::parallel::in_parallel_region`] reports
//! a parallel region (loads still work; they simply don't advance the
//! clock, and deferred evictions run at the next serial operation).
//! Since the parallel layer marks regions even when executing serially,
//! the engine behaves identically at every thread count.
//!
//! # Observability
//!
//! Five [`demon_types::obs`] counters expose the engine:
//! `store.hits`, `store.misses`, `store.evictions`,
//! `store.bytes_spilled` and `store.bytes_resident` (a high-water mark).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use demon_types::durable::{self, FrameClass};
use demon_types::obs::{self, Counter};
use demon_types::{parallel, BlockId, DemonError, Result};
use std::collections::BTreeMap;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// A value that can live in a [`BlockStore`]: it knows how to serialize
/// itself into the framed on-disk format and how big it is in memory.
///
/// `decode(encode(v))` must reproduce `v` exactly — models maintained
/// over spilled blocks are required to be byte-identical to models
/// maintained fully in memory.
pub trait Spillable: Send + Sync + Sized {
    /// Frame class tag for this record type (see [`demon_types::durable`]).
    fn frame_class() -> FrameClass;

    /// File name of the spilled value inside the store's directory.
    fn spill_file_name(id: BlockId) -> String {
        format!("block_{}.bin", id.value())
    }

    /// Serializes the value. The payload must be self-describing: decode
    /// receives nothing but these bytes.
    fn encode(&self) -> Result<Vec<u8>>;

    /// Deserializes a value previously produced by [`Spillable::encode`].
    fn decode(bytes: &[u8]) -> Result<Self>;

    /// Deterministic estimate of the value's in-memory footprint in
    /// bytes. Only used for budget accounting; it must depend on the
    /// value's *content*, never on allocator or platform details, so
    /// eviction decisions are reproducible.
    fn resident_bytes(&self) -> u64;
}

/// When a spill-backed store evicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Keep the least-recently-used residency set under this many bytes.
    Budget(u64),
    /// Evict every unpinned value after each operation (write-through;
    /// GEMM's disk shelf).
    Always,
}

/// How a component should build its [`BlockStore`]s. Threaded from
/// `demon-cli --memory-budget` down into every maintainer.
#[derive(Clone, Debug, Default)]
pub enum StoreConfig {
    /// Keep everything in memory (the historical behavior).
    #[default]
    InMemory,
    /// Spill to disk under `dir`.
    Spill {
        /// Base directory; each store built from this config gets its
        /// own labelled subdirectory.
        dir: PathBuf,
        /// Eviction policy shared by every store built from this config.
        policy: SpillPolicy,
        /// Remove each store's spill directory when the store is dropped.
        cleanup: bool,
    },
}

impl StoreConfig {
    /// A spill config with an LRU byte budget under `dir`, cleaned up on
    /// drop — what `--memory-budget` builds.
    pub fn budget(dir: PathBuf, bytes: u64) -> Self {
        StoreConfig::Spill {
            dir,
            policy: SpillPolicy::Budget(bytes),
            cleanup: true,
        }
    }

    /// Whether this config keeps everything in memory.
    pub fn is_in_memory(&self) -> bool {
        matches!(self, StoreConfig::InMemory)
    }

    /// Builds a store for record type `R`. Spill-backed stores get their
    /// own `<dir>/<label>/` subdirectory so stores of different record
    /// types never collide on file names.
    pub fn build<R: Spillable>(&self, label: &str) -> Result<BlockStore<R>> {
        match self {
            StoreConfig::InMemory => Ok(BlockStore::in_memory()),
            StoreConfig::Spill {
                dir,
                policy,
                cleanup,
            } => BlockStore::spill(dir.join(label), *policy, *cleanup),
        }
    }
}

#[derive(Debug)]
enum Backend {
    InMemory,
    Spill {
        dir: PathBuf,
        policy: SpillPolicy,
        cleanup: bool,
    },
}

struct Entry<R> {
    /// `Some` while resident.
    value: Option<Arc<R>>,
    /// Deterministic footprint, fixed at insert / last mutation.
    bytes: u64,
    /// Live [`Pinned`] guards.
    pins: u32,
    /// LRU clock value of the last touch.
    last_use: u64,
    /// The spill file is missing or stale; eviction must (re)write it.
    dirty: bool,
    /// Removed while pinned; reclaimed when the last pin drops.
    doomed: bool,
}

struct Inner<R> {
    entries: BTreeMap<BlockId, Entry<R>>,
    /// LRU clock; advances only outside parallel regions.
    tick: u64,
    /// Total `bytes` of resident entries.
    resident: u64,
}

/// A generic block store: `BlockId → R` with a bounded in-memory
/// residency set. See the crate docs for backend and pinning semantics.
///
/// All methods take `&self`; the store is internally synchronized and
/// may be shared across the deterministic parallel layer's worker
/// threads.
pub struct BlockStore<R: Spillable> {
    inner: Mutex<Inner<R>>,
    backend: Backend,
}

impl<R: Spillable> std::fmt::Debug for BlockStore<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore")
            .field("backend", &self.backend)
            .field("len", &self.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

/// A pin on one block: while alive, the block stays resident and cannot
/// be evicted or physically removed. Dereferences to the stored value.
pub struct Pinned<'s, R: Spillable> {
    store: &'s BlockStore<R>,
    id: BlockId,
    value: Arc<R>,
}

impl<R: Spillable> Deref for Pinned<'_, R> {
    type Target = R;
    fn deref(&self) -> &R {
        &self.value
    }
}

impl<R: Spillable> Drop for Pinned<'_, R> {
    fn drop(&mut self) {
        self.store.unpin(self.id);
    }
}

impl<R: Spillable> Pinned<'_, R> {
    /// The pinned block's id.
    pub fn id(&self) -> BlockId {
        self.id
    }
}

impl<R: Spillable> BlockStore<R> {
    /// A store that keeps everything resident and never evicts.
    pub fn in_memory() -> Self {
        BlockStore {
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                tick: 0,
                resident: 0,
            }),
            backend: Backend::InMemory,
        }
    }

    /// A spill-backed store under `dir` (created if missing). With
    /// `cleanup`, the directory is removed when the store is dropped.
    pub fn spill(dir: PathBuf, policy: SpillPolicy, cleanup: bool) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(BlockStore {
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                tick: 0,
                resident: 0,
            }),
            backend: Backend::Spill {
                dir,
                policy,
                cleanup,
            },
        })
    }

    /// The spill directory, if this store spills.
    pub fn spill_dir(&self) -> Option<&Path> {
        match &self.backend {
            Backend::InMemory => None,
            Backend::Spill { dir, .. } => Some(dir),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<R>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spill_path(&self, id: BlockId) -> Option<PathBuf> {
        match &self.backend {
            Backend::InMemory => None,
            Backend::Spill { dir, .. } => Some(dir.join(R::spill_file_name(id))),
        }
    }

    /// Inserts (or replaces) a block. The new value starts resident and
    /// dirty; the store evicts other blocks as its policy demands.
    pub fn insert(&self, id: BlockId, value: R) {
        let bytes = value.resident_bytes();
        let frozen = parallel::in_parallel_region();
        let mut inner = self.lock();
        if !frozen {
            inner.tick += 1;
        }
        let tick = inner.tick;
        let old = inner.entries.insert(
            id,
            Entry {
                value: Some(Arc::new(value)),
                bytes,
                pins: 0,
                last_use: tick,
                dirty: true,
                doomed: false,
            },
        );
        if let Some(old) = old {
            if old.value.is_some() {
                inner.resident = inner.resident.saturating_sub(old.bytes);
            }
        }
        inner.resident += bytes;
        if !frozen {
            self.enforce(&mut inner);
            obs::record_max(Counter::StoreBytesResident, inner.resident);
        }
    }

    /// Fetches a block, loading it from its spill file if necessary, and
    /// pins it for the lifetime of the returned guard. `Ok(None)` for an
    /// unknown (or logically removed) id; `Err` when the spill file
    /// cannot be read or decoded (the entry and its file are left in
    /// place so a later repair can retry).
    pub fn get(&self, id: BlockId) -> Result<Option<Pinned<'_, R>>> {
        let frozen = parallel::in_parallel_region();
        let mut inner = self.lock();
        let (resident, bytes) = match inner.entries.get(&id) {
            None => return Ok(None),
            Some(e) if e.doomed => return Ok(None),
            Some(e) => (e.value.clone(), e.bytes),
        };
        let (value, loaded) = match resident {
            Some(v) => (v, false),
            None => (Arc::new(self.load(id)?), true),
        };
        if !frozen {
            inner.tick += 1;
            obs::incr(if loaded {
                Counter::StoreMisses
            } else {
                Counter::StoreHits
            });
        }
        let tick = inner.tick;
        if let Some(e) = inner.entries.get_mut(&id) {
            e.pins += 1;
            e.last_use = tick;
            if loaded {
                e.value = Some(value.clone());
                // Freshly loaded from its own spill file: not dirty.
                e.dirty = false;
            }
        }
        if loaded {
            inner.resident += bytes;
        }
        if !frozen {
            self.enforce(&mut inner);
            obs::record_max(Counter::StoreBytesResident, inner.resident);
        }
        Ok(Some(Pinned {
            store: self,
            id,
            value,
        }))
    }

    /// Removes a block from the store and returns its value, deleting
    /// any spill file. `Err(InvalidParameter)` if the block is pinned;
    /// on a load error the entry and its file are left untouched.
    pub fn take(&self, id: BlockId) -> Result<Option<R>> {
        let frozen = parallel::in_parallel_region();
        let mut inner = self.lock();
        match inner.entries.get(&id) {
            None => return Ok(None),
            Some(e) if e.doomed => return Ok(None),
            Some(e) if e.pins > 0 => {
                return Err(DemonError::InvalidParameter(format!(
                    "take of pinned block {id}"
                )))
            }
            Some(_) => {}
        }
        let has_value = inner
            .entries
            .get(&id)
            .is_some_and(|e| e.value.is_some());
        if !has_value {
            // Load before removing anything, so an error is retryable.
            let value = self.load(id)?;
            inner.entries.remove(&id);
            self.delete_spill_file(id);
            if !frozen {
                obs::incr(Counter::StoreMisses);
            }
            return Ok(Some(value));
        }
        let entry = match inner.entries.remove(&id) {
            Some(e) => e,
            None => return Ok(None),
        };
        inner.resident = inner.resident.saturating_sub(entry.bytes);
        self.delete_spill_file(id);
        if !frozen {
            obs::incr(Counter::StoreHits);
            obs::record_max(Counter::StoreBytesResident, inner.resident);
        }
        match entry.value.map(Arc::try_unwrap) {
            Some(Ok(value)) => Ok(Some(value)),
            // pins == 0 was checked above, so the entry held the only Arc.
            _ => Err(DemonError::InvalidParameter(format!(
                "block {id} still referenced during take"
            ))),
        }
    }

    /// Mutates a block in place (loading it first if spilled). The value
    /// is re-measured and marked dirty so a later eviction rewrites its
    /// spill file. `Err(InvalidParameter)` if the block is pinned.
    pub fn with_mut<T>(&self, id: BlockId, f: impl FnOnce(&mut R) -> T) -> Result<Option<T>> {
        let frozen = parallel::in_parallel_region();
        let mut inner = self.lock();
        let (resident, old_bytes) = match inner.entries.get(&id) {
            None => return Ok(None),
            Some(e) if e.doomed => return Ok(None),
            Some(e) if e.pins > 0 => {
                return Err(DemonError::InvalidParameter(format!(
                    "mutation of pinned block {id}"
                )))
            }
            Some(e) => (e.value.is_some(), e.bytes),
        };
        if !resident {
            let value = self.load(id)?;
            if let Some(e) = inner.entries.get_mut(&id) {
                e.value = Some(Arc::new(value));
            }
            inner.resident += old_bytes;
            if !frozen {
                obs::incr(Counter::StoreMisses);
            }
        } else if !frozen {
            obs::incr(Counter::StoreHits);
        }
        if !frozen {
            inner.tick += 1;
        }
        let tick = inner.tick;
        let new_bytes = {
            let Some(e) = inner.entries.get_mut(&id) else {
                return Ok(None);
            };
            e.last_use = tick;
            e.dirty = true;
            let Some(arc) = e.value.as_mut() else {
                return Ok(None);
            };
            let Some(value) = Arc::get_mut(arc) else {
                // Unreachable: pins == 0 means the entry holds the only Arc.
                return Err(DemonError::InvalidParameter(format!(
                    "block {id} still referenced during mutation"
                )));
            };
            let t = f(value);
            let new_bytes = value.resident_bytes();
            e.bytes = new_bytes;
            Some((t, new_bytes))
        };
        let Some((t, new_bytes)) = new_bytes else {
            return Ok(None);
        };
        inner.resident = inner
            .resident
            .saturating_sub(old_bytes)
            .saturating_add(new_bytes);
        if !frozen {
            self.enforce(&mut inner);
            obs::record_max(Counter::StoreBytesResident, inner.resident);
        }
        Ok(Some(t))
    }

    /// Removes a block. If the block is pinned the removal is *deferred*:
    /// it disappears from [`BlockStore::ids`]/[`BlockStore::get`] at once
    /// and is physically reclaimed when the last pin drops. Returns
    /// whether the block existed.
    pub fn remove(&self, id: BlockId) -> bool {
        let frozen = parallel::in_parallel_region();
        let mut inner = self.lock();
        match inner.entries.get_mut(&id) {
            None => return false,
            Some(e) if e.doomed => return false,
            Some(e) if e.pins > 0 => {
                e.doomed = true;
                return true;
            }
            Some(_) => {}
        }
        if let Some(e) = inner.entries.remove(&id) {
            if e.value.is_some() {
                inner.resident = inner.resident.saturating_sub(e.bytes);
            }
        }
        self.delete_spill_file(id);
        if !frozen {
            obs::record_max(Counter::StoreBytesResident, inner.resident);
        }
        true
    }

    /// Ids of all (logically present) blocks, ascending.
    pub fn ids(&self) -> Vec<BlockId> {
        self.lock()
            .entries
            .iter()
            .filter(|(_, e)| !e.doomed)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Whether a block is (logically) present.
    pub fn contains(&self, id: BlockId) -> bool {
        self.lock().entries.get(&id).is_some_and(|e| !e.doomed)
    }

    /// Number of (logically present) blocks.
    pub fn len(&self) -> usize {
        self.lock().entries.values().filter(|e| !e.doomed).count()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total deterministic footprint of the resident entries, in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.lock().resident
    }

    /// Whether a block currently has live pins (test support).
    pub fn is_pinned(&self, id: BlockId) -> bool {
        self.lock().entries.get(&id).is_some_and(|e| e.pins > 0)
    }

    fn load(&self, id: BlockId) -> Result<R> {
        let Some(path) = self.spill_path(id) else {
            // An in-memory store never evicts, so a non-resident entry
            // cannot exist; treat it as corruption.
            return Err(DemonError::Corrupt {
                file: format!("block {id}"),
                detail: "non-resident entry in an in-memory store".into(),
            });
        };
        let (payload, _) = durable::read_framed(&path, R::frame_class())?;
        R::decode(&payload)
    }

    fn delete_spill_file(&self, id: BlockId) {
        if let Some(path) = self.spill_path(id) {
            let _ = std::fs::remove_file(path);
        }
    }

    fn unpin(&self, id: BlockId) {
        let frozen = parallel::in_parallel_region();
        let mut inner = self.lock();
        let mut reclaim = false;
        if let Some(e) = inner.entries.get_mut(&id) {
            e.pins = e.pins.saturating_sub(1);
            reclaim = e.pins == 0 && e.doomed;
        }
        if reclaim {
            if let Some(e) = inner.entries.remove(&id) {
                if e.value.is_some() {
                    inner.resident = inner.resident.saturating_sub(e.bytes);
                }
            }
            self.delete_spill_file(id);
        }
        if !frozen {
            self.enforce(&mut inner);
            obs::record_max(Counter::StoreBytesResident, inner.resident);
        }
    }

    /// Evicts least-recently-used unpinned blocks until the policy is
    /// satisfied. Best-effort: a spill-write failure keeps the value
    /// resident (over budget beats data loss) and stops the pass.
    /// Callers only invoke this outside parallel regions, so counter
    /// updates here are deterministic.
    fn enforce(&self, inner: &mut Inner<R>) {
        let Backend::Spill { dir, policy, .. } = &self.backend else {
            return;
        };
        loop {
            let over = match policy {
                SpillPolicy::Budget(b) => inner.resident > *b,
                SpillPolicy::Always => true,
            };
            if !over {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| e.pins == 0 && e.value.is_some())
                .min_by_key(|(id, e)| (e.last_use, **id))
                .map(|(id, _)| *id);
            let Some(id) = victim else {
                return;
            };
            let (dirty, value, bytes) = match inner.entries.get(&id) {
                Some(e) => (e.dirty, e.value.clone(), e.bytes),
                None => return,
            };
            if dirty {
                let Some(value) = value.as_deref() else {
                    return;
                };
                let path = dir.join(R::spill_file_name(id));
                let written = value
                    .encode()
                    .and_then(|payload| {
                        durable::write_framed(&path, R::frame_class(), &payload)
                            .map(|_| payload.len() as u64)
                    });
                match written {
                    Ok(n) => obs::add(Counter::StoreBytesSpilled, n),
                    Err(_) => return,
                }
            }
            if let Some(e) = inner.entries.get_mut(&id) {
                e.dirty = false;
                e.value = None;
            }
            inner.resident = inner.resident.saturating_sub(bytes);
            obs::incr(Counter::StoreEvictions);
        }
    }
}

impl<R: Spillable> Drop for BlockStore<R> {
    fn drop(&mut self) {
        if let Backend::Spill {
            dir,
            cleanup: true,
            ..
        } = &self.backend
        {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-size test record so budgets are easy to reason about.
    #[derive(Debug, Clone, PartialEq)]
    struct Rec(Vec<u8>);

    impl Spillable for Rec {
        fn frame_class() -> FrameClass {
            FrameClass(*b"ZZ")
        }
        fn encode(&self) -> Result<Vec<u8>> {
            Ok(self.0.clone())
        }
        fn decode(bytes: &[u8]) -> Result<Self> {
            Ok(Rec(bytes.to_vec()))
        }
        fn resident_bytes(&self) -> u64 {
            self.0.len() as u64
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("demon-store-{name}-{}", std::process::id()))
    }

    fn rec(fill: u8, len: usize) -> Rec {
        Rec(vec![fill; len])
    }

    #[test]
    fn in_memory_roundtrip_and_no_eviction() {
        let s: BlockStore<Rec> = BlockStore::in_memory();
        for i in 1..=4u64 {
            s.insert(BlockId(i), rec(i as u8, 100));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.resident_bytes(), 400);
        let g = s.get(BlockId(3)).unwrap().unwrap();
        assert_eq!(*g, rec(3, 100));
    }

    #[test]
    fn budget_evicts_lru_and_reloads() {
        let dir = tmp("budget");
        let s: BlockStore<Rec> =
            BlockStore::spill(dir.clone(), SpillPolicy::Budget(250), true).unwrap();
        for i in 1..=4u64 {
            s.insert(BlockId(i), rec(i as u8, 100));
        }
        // 400 bytes inserted, 250 allowed: blocks 1 and 2 spilled.
        assert!(s.resident_bytes() <= 250);
        assert!(dir.join("block_1.bin").exists());
        // Reload works and is exact.
        let g = s.get(BlockId(1)).unwrap().unwrap();
        assert_eq!(*g, rec(1, 100));
        drop(g);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn pinned_blocks_survive_eviction_pressure() {
        let dir = tmp("pinned");
        let s: BlockStore<Rec> =
            BlockStore::spill(dir, SpillPolicy::Budget(150), true).unwrap();
        s.insert(BlockId(1), rec(1, 100));
        let g = s.get(BlockId(1)).unwrap().unwrap();
        // Budget pressure from a second block cannot evict the pinned one.
        s.insert(BlockId(2), rec(2, 100));
        assert!(s.is_pinned(BlockId(1)));
        assert_eq!(*g, rec(1, 100));
        drop(g);
        // After unpinning, the store settles back under budget.
        assert!(s.resident_bytes() <= 150);
    }

    #[test]
    fn remove_of_pinned_block_is_deferred() {
        let dir = tmp("deferred");
        let s: BlockStore<Rec> =
            BlockStore::spill(dir.clone(), SpillPolicy::Budget(1000), true).unwrap();
        s.insert(BlockId(1), rec(1, 10));
        let g = s.get(BlockId(1)).unwrap().unwrap();
        assert!(s.remove(BlockId(1)));
        // Logically gone at once…
        assert!(!s.contains(BlockId(1)));
        assert!(s.ids().is_empty());
        assert!(s.get(BlockId(1)).unwrap().is_none());
        // …but the pinned guard still reads valid data.
        assert_eq!(*g, rec(1, 10));
        drop(g);
        // Physically reclaimed after the last pin.
        assert_eq!(s.resident_bytes(), 0);
        assert!(!dir.join("block_1.bin").exists());
    }

    #[test]
    fn always_policy_keeps_nothing_unpinned_resident() {
        let dir = tmp("always");
        let s: BlockStore<Rec> =
            BlockStore::spill(dir.clone(), SpillPolicy::Always, false).unwrap();
        s.insert(BlockId(1), rec(1, 64));
        s.insert(BlockId(2), rec(2, 64));
        assert_eq!(s.resident_bytes(), 0);
        assert!(dir.join("block_1.bin").exists());
        assert!(dir.join("block_2.bin").exists());
        let v = s.take(BlockId(1)).unwrap().unwrap();
        assert_eq!(v, rec(1, 64));
        assert!(!dir.join("block_1.bin").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn take_of_pinned_block_errors_and_corrupt_spill_is_retryable() {
        let dir = tmp("corrupt");
        let s: BlockStore<Rec> =
            BlockStore::spill(dir.clone(), SpillPolicy::Always, true).unwrap();
        s.insert(BlockId(1), rec(1, 64));
        {
            let _g = s.get(BlockId(1)).unwrap().unwrap();
            assert!(s.take(BlockId(1)).is_err());
        }
        // Corrupt the spill file: take fails but leaves the entry.
        let path = dir.join("block_1.bin");
        std::fs::write(&path, b"garbage").unwrap();
        assert!(s.take(BlockId(1)).is_err());
        assert!(s.contains(BlockId(1)));
        assert!(path.exists());
    }

    #[test]
    fn mutation_marks_dirty_and_respills() {
        let dir = tmp("mutate");
        let s: BlockStore<Rec> =
            BlockStore::spill(dir.clone(), SpillPolicy::Always, true).unwrap();
        s.insert(BlockId(1), rec(1, 8));
        // Spilled; mutate reloads, changes, and the next eviction rewrites.
        let out = s
            .with_mut(BlockId(1), |r| {
                r.0 = vec![9; 16];
                r.0.len()
            })
            .unwrap()
            .unwrap();
        assert_eq!(out, 16);
        let g = s.get(BlockId(1)).unwrap().unwrap();
        assert_eq!(*g, rec(9, 16));
    }

    #[test]
    fn cleanup_removes_spill_dir_on_drop() {
        let dir = tmp("cleanup");
        {
            let s: BlockStore<Rec> =
                BlockStore::spill(dir.clone(), SpillPolicy::Always, true).unwrap();
            s.insert(BlockId(1), rec(1, 8));
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
