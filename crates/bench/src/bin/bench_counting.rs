//! `BENCH_counting.json` — the support-counting point of the repo's
//! machine-readable perf trajectory.
//!
//! Counts the full (size ≥ 2) negative border of a mined Quest dataset
//! against the whole store with every counting backend, sweeping the
//! thread count 1/2/4/8 and reporting the **median** wall time of each
//! configuration. Counts are asserted bit-identical across backends and
//! thread counts on every run, so the numbers always describe the same
//! answer.
//!
//! Methodology: one untimed warm-up pass per backend, then `repeats`
//! rounds that each visit every (threads, backend) configuration once —
//! interleaving spreads machine-load drift across configurations. The
//! JSON carries `serial_baseline_ms` (the 1-thread medians) and a
//! per-entry `speedup` map (`serial / median`); the CI bench-regression
//! gate fails any multi-thread entry slower than its serial baseline.
//!
//! Knobs: `DEMON_SCALE` (dataset size, default 0.02) and
//! `DEMON_BENCH_REPEATS` (timed repeats per configuration, default 5).
//! The JSON is written to `BENCH_counting.json` in the working directory
//! (the repo root, when run via `cargo run`).

use demon_bench::{bench_repeats, median_ms, quest_block, scale, write_bench_json};
use demon_itemsets::{count_supports_with, CounterKind, FrequentItemsets, TxStore};
use demon_types::{obs, BlockId, ItemSet, MinSupport, Parallelism};
use serde_json::json;
use std::time::Instant;

const SPEC: &str = "2M.20L.1I.4pats.4plen";
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let minsup = MinSupport::new(0.01).unwrap();
    let repeats = bench_repeats();
    let (store, ids, candidates) = prepare(minsup);
    println!(
        "# BENCH counting: {} candidates, {} blocks, scale={}, repeats={}",
        candidates.len(),
        ids.len(),
        scale(),
        repeats
    );

    let kinds = [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus];
    // Reference counts at one thread; every other configuration must match.
    let reference =
        count_supports_with(CounterKind::Ecut, &store, &ids, &candidates, Parallelism::serial());

    // Warm-up: one untimed pass per backend, so the first timed
    // configuration doesn't pay one-off page-fault / cache-fill costs
    // that later configurations skip.
    for kind in kinds {
        let _ = count_supports_with(kind, &store, &ids, &candidates, Parallelism::serial());
    }

    // Interleaved sampling: each repeat visits every (threads, backend)
    // configuration once, so slow machine-load drift spreads evenly
    // across configurations instead of biasing whichever ran last; the
    // starting configuration rotates per repeat so position-in-round
    // effects (allocator/cache state left by the previous config) are
    // shared out too.
    let configs: Vec<(usize, usize)> = (0..THREADS.len())
        .flat_map(|ti| (0..kinds.len()).map(move |ki| (ti, ki)))
        .collect();
    let mut samples: Vec<Vec<Vec<std::time::Duration>>> =
        vec![vec![Vec::with_capacity(repeats); kinds.len()]; THREADS.len()];
    for rep in 0..repeats {
        for c in 0..configs.len() {
            let (ti, ki) = configs[(c + rep) % configs.len()];
            let (t, kind) = (THREADS[ti], kinds[ki]);
            let par = Parallelism::new(t);
            let t0 = Instant::now();
            let r = count_supports_with(kind, &store, &ids, &candidates, par);
            samples[ti][ki].push(t0.elapsed());
            assert_eq!(
                reference.counts,
                r.counts,
                "{} at {} threads disagrees with the serial reference",
                kind.name(),
                t
            );
        }
    }

    // Serial (1-thread) medians double as the anti-scaling baseline the
    // CI bench-regression gate compares every multi-thread median to.
    let mut serial_baseline = serde_json::Map::new();
    for (ki, kind) in kinds.iter().enumerate() {
        serial_baseline.insert(
            kind.name().to_string(),
            json!(median_ms(&mut samples[0][ki].clone())),
        );
    }

    let mut sweep = Vec::new();
    for (ti, &t) in THREADS.iter().enumerate() {
        let mut medians = serde_json::Map::new();
        let mut speedups = serde_json::Map::new();
        for (ki, kind) in kinds.iter().enumerate() {
            let median = median_ms(&mut samples[ti][ki]);
            let base = serial_baseline
                .get(kind.name())
                .and_then(serde_json::Value::as_f64)
                .expect("serial baseline recorded");
            medians.insert(kind.name().to_string(), json!(median));
            speedups.insert(
                kind.name().to_string(),
                json!((base / median * 1000.0).round() / 1000.0),
            );
        }
        println!("# threads={t}: {medians:?}");
        sweep.push(json!({ "threads": t, "median_ms": medians, "speedup": speedups }));
    }

    // Operation counts per backend: one extra serial pass with the
    // recorder on. The timed loops above run with it off, so the medians
    // are untouched by instrumentation.
    let mut op_counts = serde_json::Map::new();
    for kind in kinds {
        obs::reset();
        obs::enable();
        let _ = count_supports_with(kind, &store, &ids, &candidates, Parallelism::serial());
        obs::disable();
        let mut section = serde_json::Map::new();
        for (name, value) in obs::snapshot().counters {
            if value > 0 {
                section.insert(name.to_string(), json!(value));
            }
        }
        op_counts.insert(kind.name().to_string(), json!(section));
    }

    write_bench_json(
        "BENCH_counting.json",
        json!({
            "bench": "counting",
            "spec": SPEC,
            "scale": scale(),
            "repeats": repeats,
            "n_candidates": candidates.len(),
            "n_blocks": ids.len(),
            "serial_baseline_ms": serial_baseline,
            "threads": sweep,
            "op_counts": op_counts,
        }),
    );
}

/// Four Quest blocks, the mined model's negative border as candidates,
/// and materialized frequent pairs so ECUT+ exercises its fast path.
fn prepare(minsup: MinSupport) -> (TxStore, Vec<BlockId>, Vec<ItemSet>) {
    let n_items = 1000;
    let mut store = TxStore::new(n_items);
    let mut tid = 1u64;
    let mut ids = Vec::new();
    for b in 1..=4u64 {
        let block = quest_block(&quarter(SPEC), b, BlockId(b), tid);
        tid += block.len() as u64;
        ids.push(block.id());
        store.add_block(block);
    }
    let model = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
    let pairs = model.frequent_pairs_by_support();
    for &id in &ids {
        store.materialize_pairs(id, &pairs, None);
    }
    let mut candidates: Vec<ItemSet> = model
        .border()
        .keys()
        .filter(|s| s.len() >= 2)
        .cloned()
        .collect();
    candidates.sort();
    (store, ids, candidates)
}

/// Divides the spec's transaction count by 4 (loaded as 4 blocks).
fn quarter(spec: &str) -> String {
    let mut parts: Vec<String> = spec.split('.').map(str::to_string).collect();
    let m: f64 = parts[0].trim_end_matches('M').parse().unwrap();
    parts[0] = format!("{}K", (m * 1000.0 / 4.0).round() as u64);
    parts.join(".")
}
