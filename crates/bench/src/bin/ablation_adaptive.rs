//! **Ablation A4** — the `Adaptive` counter against the fixed backends.
//!
//! The paper studies the PT-Scan/ECUT trade-off empirically and leaves
//! the choice to the analyst; `CounterKind::Adaptive` encodes the
//! decision rule (compare the estimated units each backend would read).
//! The sweep verifies that Adaptive tracks the cheaper backend across the
//! |S| range, never paying more than a small estimation overhead.

use demon_bench::{banner, ms, quest_block, Table};
use demon_itemsets::counter::count_supports;
use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon_types::{BlockId, ItemSet, MinSupport};
use rand::prelude::*;
use std::time::Instant;

fn main() {
    banner(
        "Ablation A4",
        "Adaptive counter vs fixed backends, counting time vs |S|",
        "dataset 2M.20L.1I.4pats.4plen, κ=0.01, S ⊆ NB⁻ (size ≥ 2)",
    );
    let minsup = MinSupport::new(0.01).unwrap();
    let mut store = TxStore::new(1000);
    let block = quest_block("2M.20L.1I.4pats.4plen", 33, BlockId(1), 1);
    store.add_block(block);
    let ids = [BlockId(1)];
    let model = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
    let pairs = model.frequent_pairs_by_support();
    store.materialize_pairs(BlockId(1), &pairs, None);
    let mut border: Vec<ItemSet> = model
        .border()
        .keys()
        .filter(|s| s.len() >= 2)
        .cloned()
        .collect();
    border.sort();
    border.shuffle(&mut StdRng::seed_from_u64(8));

    let mut table = Table::new(
        "ablation_adaptive",
        &["n_itemsets", "ptscan_ms", "ecutplus_ms", "adaptive_ms", "adaptive_units"],
    );
    // Warm up all paths.
    let warm: Vec<ItemSet> = border.iter().take(4).cloned().collect();
    for kind in [CounterKind::PtScan, CounterKind::EcutPlus, CounterKind::Adaptive] {
        count_supports(kind, &store, &ids, &warm);
    }
    for &s in &[5usize, 20, 80, 320, 1280, 5120] {
        let cands: Vec<ItemSet> = border.iter().cycle().take(s).cloned().collect();
        // Cycling may duplicate candidates once s exceeds the border; use
        // only the distinct prefix for correctness of PT-Scan slots.
        let mut distinct = cands.clone();
        distinct.sort();
        distinct.dedup();
        let mut row: Vec<f64> = Vec::new();
        let mut units = 0u64;
        for kind in [CounterKind::PtScan, CounterKind::EcutPlus, CounterKind::Adaptive] {
            let t0 = Instant::now();
            let r = count_supports(kind, &store, &ids, &distinct);
            row.push(ms(t0.elapsed()));
            if kind == CounterKind::Adaptive {
                units = r.units_read;
            }
        }
        table.row(&[
            &distinct.len(),
            &format!("{:.2}", row[0]),
            &format!("{:.2}", row[1]),
            &format!("{:.2}", row[2]),
            &units,
        ]);
    }
}
