//! **Ablations A1/A2** — GEMM vs. `AuM` (direct add/delete maintenance)
//! over the most recent window (paper §3.2.4).
//!
//! * A1, BSS = ⟨1…1⟩: `AuM` must delete the outgoing block *and* add the
//!   incoming one — roughly twice GEMM's response time (GEMM pays only
//!   the addition; the other models update off-line).
//! * A2, BSS = ⟨1010…⟩ (window-relative): each slide replaces the whole
//!   selected set, so `AuM` degenerates toward re-mining from scratch
//!   while GEMM's response time stays one block-addition.

use demon_bench::{banner, ms, quest_block_sized, scale, Table};
use demon_core::aum::AumWindow;
use demon_core::bss::{BlockSelector, WrBss};
use demon_core::{Gemm, ItemsetMaintainer};
use demon_itemsets::CounterKind;
use demon_types::{BlockId, MinSupport};

fn block_stream(n_blocks: u64, block_size: usize) -> Vec<demon_types::TxBlock> {
    let mut tid = 1u64;
    (1..=n_blocks)
        .map(|id| {
            let b = quest_block_sized("1M.20L.1I.4pats.4plen", block_size, 100 + id, BlockId(id), tid);
            tid += b.len() as u64;
            b
        })
        .collect()
}

fn maintainer() -> ItemsetMaintainer {
    ItemsetMaintainer::new(1000, MinSupport::new(0.01).unwrap(), CounterKind::Ecut)
}

fn main() {
    banner(
        "Ablation A1/A2",
        "GEMM vs AuM response time over the most recent window",
        "w=4, blocks of 50K (scaled), κ=0.01, ECUT update counter",
    );
    let block_size = ((50_000.0 * scale()).round() as usize).max(500);
    let w = 4usize;
    let n_blocks = 12u64;
    let mut table = Table::new(
        "ablation_gemm",
        &[
            "bss",
            "maintainer",
            "mean_response_ms",
            "max_response_ms",
            "mean_blocks_touched",
        ],
    );

    for (label, selector) in [
        ("all-ones", BlockSelector::all()),
        (
            "1010 (window-relative)",
            BlockSelector::WindowRelative(WrBss::new(vec![true, false, true, false])),
        ),
        (
            "0101 (window-relative)",
            BlockSelector::WindowRelative(WrBss::new(vec![false, true, false, true])),
        ),
    ] {
        // GEMM.
        let mut gemm = Gemm::new(maintainer(), w, selector.clone()).unwrap();
        let mut g_resp: Vec<f64> = Vec::new();
        for b in block_stream(n_blocks, block_size) {
            let s = gemm.add_block(b).unwrap();
            g_resp.push(ms(s.response_time));
        }
        // Skip the warmup steps: the steady-state slides are what §3.2.4
        // compares.
        let steady = &g_resp[w..];
        table.row(&[
            &label,
            &"GEMM",
            &format!("{:.2}", mean(steady)),
            &format!("{:.2}", max(steady)),
            &1.0,
        ]);

        // AuM.
        let mut aum = AumWindow::new(maintainer(), w, selector).unwrap();
        let mut a_resp: Vec<f64> = Vec::new();
        let mut touched: Vec<f64> = Vec::new();
        for b in block_stream(n_blocks, block_size) {
            let s = aum.add_block(b).unwrap();
            a_resp.push(ms(s.response_time));
            touched.push((s.blocks_added + s.blocks_removed) as f64);
        }
        let steady_a = &a_resp[w..];
        table.row(&[
            &label,
            &"AuM",
            &format!("{:.2}", mean(steady_a)),
            &format!("{:.2}", max(steady_a)),
            &format!("{:.1}", mean(&touched[w..])),
        ]);
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn max(v: &[f64]) -> f64 {
    v.iter().copied().fold(0.0, f64::max)
}
