//! **Figure 10** — time to incrementally update the set of compact
//! sequences as each of the 82 six-hour trace blocks arrives.
//!
//! Expected shape: cheap updates for blocks similar to most history (the
//! deviation uses already-tracked supports), with spikes at blocks that
//! differ from many earlier blocks — weekends and the anomalous Monday —
//! because computing the deviation between dissimilar blocks must scan
//! both blocks.

use demon_bench::{banner, ms, scale, Table};
use demon_datagen::webtrace::{self, WebTraceConfig, WebTraceGen};
use demon_focus::{CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig};
use demon_types::calendar::{self, Weekday};
use demon_types::{MinSupport, Timestamp};

fn main() {
    banner(
        "Figure 10",
        "per-block compact-sequence update time (82 six-hour blocks)",
        "synthetic DEC trace, κ=0.01",
    );
    let base_rate = std::env::var("DEMON_TRACE_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| (2000.0 * scale() * 10.0).max(200.0));
    let alpha = std::env::var("DEMON_ALPHA")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.12);

    let mut gen = WebTraceGen::new(WebTraceConfig {
        base_rate,
        ..WebTraceConfig::default()
    });
    let requests = gen.generate();
    let blocks =
        webtrace::segment_into_blocks(&requests, 6, Timestamp::from_day_hour(0, 12));

    let oracle = ItemsetSimilarity::new(
        webtrace::N_ITEMS,
        MinSupport::new(0.01).unwrap(),
        SimilarityConfig::Threshold { alpha },
    );
    let mut miner = CompactSequenceMiner::new(oracle);

    let mut table = Table::new(
        "fig10",
        &["block", "day", "weekday", "hour", "txs", "time_ms", "similar_pairs", "pairs"],
    );
    for block in blocks {
        let iv = block.interval().unwrap();
        let (day, hour) = (iv.start.day(), iv.start.hour());
        let n = block.len();
        // Blocks are numbered 0..=81 as in the paper.
        let idx = block.id().index();
        let stats = miner.add_block(block);
        table.row(&[
            &idx,
            &calendar::format_date(day),
            &Weekday::of_day(day),
            &hour,
            &n,
            &format!("{:.2}", ms(stats.time)),
            &stats.similar_pairs,
            &stats.pairs_evaluated,
        ]);
    }
}
