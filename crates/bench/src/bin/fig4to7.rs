//! **Figures 4–7** — total model-maintenance time (detection phase +
//! update phase) when a second block is added, vs. the size of that
//! block, for each update-phase counter.
//!
//! Paper setting: first block `2M.20L.1I.4pats.4plen`; second block drawn
//! from `∗M.20L.1I.8pats.4plen` (Figs 4–5) or `∗M.20L.1I.4pats.5plen`
//! (Figs 6–7, more churn in the frequent itemsets); κ ∈ {0.008, 0.009};
//! second-block sizes 10K–400K (0.5%–20% of the first block). Expected
//! shape: the update phase dominates BORDERS/PT-Scan; with ECUT/ECUT+ the
//! update phase shrinks 2–10× and detection dominates instead.

use demon_bench::{banner, ms, quest_block, quest_block_sized, scale, Table};
use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon_types::{BlockId, MinSupport};

fn main() {
    banner(
        "Figures 4-7",
        "maintenance time (detection + update) vs new-block size",
        "first block 2M.20L.1I.4pats.4plen; second {8pats.4plen | 4pats.5plen}; κ ∈ {0.008, 0.009}",
    );
    let mut table = Table::new(
        "fig4to7",
        &[
            "figure",
            "second_spec",
            "minsup",
            "block_size",
            "counter",
            "detection_ms",
            "update_ms",
            "total_ms",
            "candidates",
            "promoted",
            "demoted",
        ],
    );

    let cases = [
        ("fig4", "20L.1I.8pats.4plen", 0.008),
        ("fig5", "20L.1I.8pats.4plen", 0.009),
        ("fig6", "20L.1I.4pats.5plen", 0.008),
        ("fig7", "20L.1I.4pats.5plen", 0.009),
    ];
    let paper_sizes = [10_000usize, 25_000, 50_000, 75_000, 100_000, 150_000, 200_000, 400_000];

    for (figure, second_tail, kappa) in cases {
        let minsup = MinSupport::new(kappa).unwrap();
        // Base: the first block plus its mined model.
        let mut store = TxStore::new(1000);
        let first = quest_block("2M.20L.1I.4pats.4plen", 11, BlockId(1), 1);
        let first_len = first.len() as u64;
        store.add_block(first);
        let base_model =
            FrequentItemsets::mine_from(&store, &[BlockId(1)], minsup).unwrap();
        // ECUT+ materialization: frequent 2-itemsets of the current model,
        // in the base block (the new block's pairs are added per size).
        let pairs = base_model.frequent_pairs_by_support();
        store.materialize_pairs(BlockId(1), &pairs, None);

        for &paper_size in &paper_sizes {
            let n = ((paper_size as f64) * scale()).round().max(1.0) as usize;
            let spec = format!("1M.{second_tail}");
            let second = quest_block_sized(&spec, n, 500 + paper_size as u64, BlockId(2), first_len + 1);
            store.add_block(second);
            store.materialize_pairs(BlockId(2), &pairs, None);

            for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
                let mut model = base_model.clone();
                // The detection index is long-lived in a deployed system;
                // build it outside the timed maintenance step.
                model.warm_detector();
                let stats = model.absorb_block(&store, BlockId(2), kind).unwrap();
                table.row(&[
                    &figure,
                    &second_tail,
                    &kappa,
                    &paper_size,
                    &kind.name(),
                    &format!("{:.2}", ms(stats.detection_time)),
                    &format!("{:.2}", ms(stats.update_time)),
                    &format!("{:.2}", ms(stats.total_time())),
                    &stats.candidates_counted,
                    &stats.promoted,
                    &stats.demoted,
                ]);
            }
            store.remove_block(BlockId(2));
        }
    }
}
