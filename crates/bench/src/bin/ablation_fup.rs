//! **Ablation A5** — FUP vs. BORDERS (paper §6: "The BORDERS algorithm
//! improves the FUP algorithm by reducing the number of scans of the old
//! database").
//!
//! Both maintainers absorb the same second block; the table reports total
//! maintenance time, full scans of the old database, and units read.
//! Expected shape: FUP re-scans the old data once per level that has
//! surviving new candidates, while BORDERS' detection phase reads only
//! the new block and its update phase (with ECUT) touches only the
//! relevant TID-lists.

use demon_bench::{banner, ms, quest_block, quest_block_sized, scale, Table};
use demon_itemsets::{CounterKind, FrequentItemsets, FupModel, TxStore};
use demon_types::{BlockId, MinSupport};

fn main() {
    banner(
        "Ablation A5",
        "FUP vs BORDERS maintenance cost",
        "first block 2M.20L.1I.4pats.4plen, second *M.20L.1I.8pats.4plen, κ=0.009",
    );
    let minsup = MinSupport::new(0.009).unwrap();
    let mut table = Table::new(
        "ablation_fup",
        &[
            "block_size",
            "maintainer",
            "time_ms",
            "old_db_scans",
            "units_read",
            "n_frequent",
        ],
    );

    let mut store = TxStore::new(1000);
    let first = quest_block("2M.20L.1I.4pats.4plen", 55, BlockId(1), 1);
    let first_len = first.len() as u64;
    store.add_block(first);

    // Warm models over the first block.
    let borders_base =
        FrequentItemsets::mine_from(&store, &[BlockId(1)], minsup).unwrap();
    let mut fup_base = FupModel::empty(minsup, 1000);
    fup_base.absorb_block(&store, BlockId(1)).unwrap();

    for paper_size in [10_000u64, 50_000, 100_000, 400_000] {
        let n = ((paper_size as f64) * scale()).round().max(1.0) as usize;
        let second =
            quest_block_sized("1M.20L.1I.8pats.4plen", n, 900 + paper_size, BlockId(2), first_len + 1);
        store.add_block(second);

        // FUP.
        let mut fup = fup_base.clone();
        let fstats = fup.absorb_block(&store, BlockId(2)).unwrap();
        table.row(&[
            &paper_size,
            &"FUP",
            &format!("{:.2}", ms(fstats.time)),
            &fstats.old_db_scans,
            &fstats.units_read,
            &fup.frequent().len(),
        ]);

        // BORDERS with ECUT.
        let mut borders = borders_base.clone();
        borders.warm_detector();
        let bstats = borders
            .absorb_block(&store, BlockId(2), CounterKind::Ecut)
            .unwrap();
        table.row(&[
            &paper_size,
            &"BORDERS+ECUT",
            &format!("{:.2}", ms(bstats.total_time())),
            &0usize,
            &(bstats.detection_units + bstats.update_units),
            &borders.n_frequent(),
        ]);

        // Agreement check: both maintainers reach the same model.
        assert_eq!(fup.frequent(), borders.frequent(), "maintainers disagree");
        store.remove_block(BlockId(2));
    }
}
