//! **Figure 3** (table) — extra disk space for materializing the
//! TID-lists of all frequent 2-itemsets, as a percentage of the base
//! dataset size.
//!
//! Paper values on `{2M,4M}.20L.1I.4pats.4plen`: 25.3% at κ = 0.008,
//! 11.8% at κ = 0.010, 5.3% at κ = 0.012 — the extra space shrinks fast
//! as the support threshold rises because fewer pairs stay frequent.

use demon_bench::{banner, quest_block, Table};
use demon_itemsets::{FrequentItemsets, TxStore};
use demon_types::{BlockId, MinSupport};

fn main() {
    banner(
        "Figure 3",
        "% extra space for frequent 2-itemset TID-lists",
        "datasets {2M,4M}.20L.1I.4pats.4plen, κ ∈ {0.008, 0.010, 0.012}",
    );
    let mut table = Table::new(
        "fig3",
        &["dataset", "minsup", "freq_pairs", "base_space", "pair_space", "extra_pct"],
    );
    for spec in ["2M.20L.1I.4pats.4plen", "4M.20L.1I.4pats.4plen"] {
        let label = spec.split('.').next().unwrap();
        for kappa in [0.008, 0.010, 0.012] {
            let minsup = MinSupport::new(kappa).unwrap();
            let mut store = TxStore::new(1000);
            let block = quest_block(spec, 7, BlockId(1), 1);
            store.add_block(block);
            let ids = [BlockId(1)];
            let model = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
            let pairs = model.frequent_pairs_by_support();
            store.materialize_pairs(BlockId(1), &pairs, None);
            let base = store.item_space(&ids);
            let extra = store.pair_space(&ids);
            table.row(&[
                &label,
                &kappa,
                &pairs.len(),
                &base,
                &extra,
                &format!("{:.1}", extra as f64 / base as f64 * 100.0),
            ]);
        }
    }
}
