//! **Ablation A6** — GEMM response time vs. window size (§3.2.3: "the
//! response time is less than or equal to the time taken by `A_M` to
//! update the model", i.e. *independent of `w`*; the extra cost of larger
//! windows is off-line and its models can live on disk).
//!
//! The sweep absorbs the same block stream at several window sizes and
//! reports the steady-state response time (flat), the off-line time
//! (grows with `w`), and the off-line time with parallel future-window
//! updates (the updates are independent).

use demon_bench::{banner, ms, quest_block_sized, scale, Table};
use demon_core::bss::BlockSelector;
use demon_core::{Gemm, ItemsetMaintainer};
use demon_itemsets::CounterKind;
use demon_types::{BlockId, MinSupport};

fn stream(n: u64, size: usize) -> Vec<demon_types::TxBlock> {
    let mut tid = 1u64;
    (1..=n)
        .map(|id| {
            let b = quest_block_sized("1M.20L.1I.4pats.4plen", size, 40 + id, BlockId(id), tid);
            tid += b.len() as u64;
            b
        })
        .collect()
}

fn main() {
    banner(
        "Ablation A6",
        "GEMM response vs window size (response flat, off-line grows)",
        "blocks of 50K (scaled), κ=0.05, ECUT",
    );
    let block_size = ((50_000.0 * scale()).round() as usize).max(500);
    let mut table = Table::new(
        "ablation_gemm_window",
        &[
            "window",
            "parallel",
            "mean_response_ms",
            "mean_offline_ms",
        ],
    );
    for w in [2usize, 4, 8] {
        for parallel in [false, true] {
            // κ=0.05 keeps the model size window-independent at bench scale
            // (κ=0.01 over a 2-block window collapses the absolute threshold
            // and blows the model up, measuring model size, not GEMM).
            let maintainer =
                ItemsetMaintainer::new(1000, MinSupport::new(0.05).unwrap(), CounterKind::Ecut);
            let mut gemm = Gemm::new(maintainer, w, BlockSelector::all())
                .unwrap()
                .with_parallel_offline(parallel);
            let mut resp = Vec::new();
            let mut off = Vec::new();
            for b in stream(w as u64 + 6, block_size) {
                let s = gemm.add_block(b).unwrap();
                resp.push(ms(s.response_time));
                off.push(ms(s.offline_time));
            }
            // Steady state only (after warmup).
            let steady_r = &resp[w..];
            let steady_o = &off[w..];
            table.row(&[
                &w,
                &parallel,
                &format!("{:.2}", mean(steady_r)),
                &format!("{:.2}", mean(steady_o)),
            ]);
        }
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
