//! **Figure 8** — BIRCH+ vs. non-incremental BIRCH, time to refresh the
//! cluster model when a new block arrives, vs. new-block size.
//!
//! Paper setting: first block `1M.50c.5d`, second block `∗M.50c.5d` with
//! 100K–800K points and 2% uniform noise. Expected shape: BIRCH re-scans
//! everything (cost grows with the *total* data), while BIRCH+ only scans
//! the new block plus a near-constant phase-2 — a widening gap.

use demon_bench::{banner, ms, scale, Table};
use demon_clustering::{Birch, BirchParams, BirchPlus};
use demon_datagen::{ClusterDataGen, ClusterParams};
use demon_types::{BlockId, PointBlock};

fn main() {
    banner(
        "Figure 8",
        "BIRCH+ vs BIRCH, model refresh time vs new-block size",
        "first block 1M.50c.5d, second block *M.50c.5d, 2% noise",
    );
    let mut table = Table::new(
        "fig8",
        &[
            "new_block_size",
            "birch_total_ms",
            "birchplus_phase1_ms",
            "birchplus_phase2_ms",
            "birchplus_total_ms",
            "speedup",
            "clusters",
        ],
    );

    let mut params = BirchParams::new(5, 50);
    params.tree.threshold2 = 4.0;
    params.tree.max_leaf_entries = 2048;
    params.seed = 3;

    let base_n = (1_000_000.0 * scale()).round() as usize;
    let cluster_params = ClusterParams::parse("1M.50c.5d", scale()).unwrap();
    let mut gen = ClusterDataGen::new(cluster_params, 99);
    let base_points = gen.take_points(base_n);
    let base_block = PointBlock::new(BlockId(1), base_points);

    // Pre-build the maintained BIRCH+ tree over the base block (this cost
    // was paid when the base block arrived; Figure 8 measures the refresh).
    let mut warm = BirchPlus::new(params);
    warm.absorb_block(&base_block);

    for paper_size in [100_000u64, 200_000, 300_000, 400_000, 500_000, 600_000, 700_000, 800_000]
    {
        let n = ((paper_size as f64) * scale()).round().max(1.0) as usize;
        let new_block = PointBlock::new(BlockId(2), gen.take_points(n));

        // Non-incremental BIRCH: cluster base + new from scratch.
        let (full_model, full_stats) = Birch::new(params).cluster_blocks(&[&base_block, &new_block]);

        // BIRCH+: resume phase 1 on the new block, re-run phase 2.
        let mut plus = warm.clone();
        let p1 = plus.absorb_block(&new_block);
        let (plus_model, p2) = plus.model();

        let birch_ms = ms(full_stats.total_time());
        let plus_ms = ms(p1 + p2);
        table.row(&[
            &paper_size,
            &format!("{birch_ms:.2}"),
            &format!("{:.2}", ms(p1)),
            &format!("{:.2}", ms(p2)),
            &format!("{plus_ms:.2}"),
            &format!("{:.1}x", birch_ms / plus_ms.max(1e-6)),
            &format!("{}/{}", plus_model.k(), full_model.k()),
        ]);
    }
}
