//! **Ablation A7** — trend dilution: the quantified version of the
//! paper's §2.2 motivation for the most recent window ("mining for
//! patterns over the entire database may dilute some patterns that may
//! be visible if only the most recent window of data is analyzed").
//!
//! A drifting Quest stream switches pattern pools halfway through. For
//! each block arrival the table reports how much of the *new* regime's
//! frequent-itemset model is visible in the unrestricted-window model vs
//! the 4-block most-recent-window model. Expected shape: the MRW model
//! converges to the new regime within `w` blocks; the UW model stays
//! diluted by the accumulated history.

use demon_bench::{banner, scale, Table};
use demon_core::bss::{BlockSelector, WiBss};
use demon_core::engine::UwEngine;
use demon_core::{Gemm, ItemsetMaintainer};
use demon_datagen::{DriftingQuestGen, QuestGen, QuestParams};
use demon_itemsets::{CounterKind, FrequentItemsets};
use demon_types::{BlockId, MinSupport};

fn params() -> QuestParams {
    QuestParams {
        n_transactions: 0,
        avg_tx_len: 10.0,
        n_items: 500,
        n_patterns: 200,
        avg_pattern_len: 4.0,
        ..QuestParams::default()
    }
}

/// Fraction of `reference`'s frequent itemsets visible in `model`.
fn recall(model: &FrequentItemsets, reference: &FrequentItemsets) -> f64 {
    if reference.n_frequent() == 0 {
        return 1.0;
    }
    let hit = reference
        .frequent()
        .keys()
        .filter(|s| model.is_frequent(s))
        .count();
    hit as f64 / reference.n_frequent() as f64
}

fn main() {
    banner(
        "Ablation A7",
        "trend dilution: UW vs MRW recall of the new regime after a switch",
        "drifting Quest stream, 500 items, switch after block 6 of 14, w=4, κ=0.01",
    );
    let minsup = MinSupport::new(0.01).unwrap();
    let block_size = ((100_000.0 * scale()).round() as usize).max(1000);
    let total = 14usize;
    let switch_at = 6usize;

    // Ground truth for the *new* regime: a large sample from pool 1.
    let reference = {
        let mut pure = QuestGen::new(params(), 100 + 1);
        let block = demon_types::Block::new(BlockId(1), pure.take_transactions(4 * block_size));
        FrequentItemsets::mine_blocks(&[&block], 500, minsup)
    };

    let mut gen = DriftingQuestGen::switch_once(params(), 100, switch_at, total);
    let mut uw = UwEngine::new(
        ItemsetMaintainer::new(500, minsup, CounterKind::Ecut),
        WiBss::All,
    );
    let mut mrw = Gemm::new(
        ItemsetMaintainer::new(500, minsup, CounterKind::Ecut),
        4,
        BlockSelector::all(),
    )
    .unwrap();

    let mut table = Table::new(
        "ablation_dilution",
        &["block", "regime", "uw_recall_pct", "mrw_recall_pct", "uw_L", "mrw_L"],
    );
    for i in 1..=total as u64 {
        let block = gen.next_block(block_size);
        let regime = gen.regime_of(block.id());
        uw.add_block(block.clone()).unwrap();
        mrw.add_block(block).unwrap();
        let u = uw.model();
        let m = mrw.current_model().unwrap();
        table.row(&[
            &i,
            &regime,
            &format!("{:.1}", recall(u, &reference) * 100.0),
            &format!("{:.1}", recall(m, &reference) * 100.0),
            &u.n_frequent(),
            &m.n_frequent(),
        ]);
    }
}
