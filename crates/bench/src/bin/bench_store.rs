//! `BENCH_store.json` — the block-storage-engine point of the repo's
//! machine-readable perf trajectory.
//!
//! Replays a Quest stream into a `TxStore` and mines the frequent
//! itemsets under four residency configurations: fully in-memory and
//! three spill budgets (1/2, 1/8, and a near-zero fraction of the
//! unbounded footprint). Every configuration's mined model is asserted
//! byte-identical to the in-memory serial reference on every run, so
//! the timings always describe the same answer; the spill
//! configurations are additionally asserted to have actually evicted.
//!
//! Knobs: `DEMON_SCALE` (dataset size, default 0.02) and
//! `DEMON_BENCH_REPEATS` (timed repeats per configuration, default 5).
//! The JSON is written to `BENCH_store.json` in the working directory
//! (the repo root, when run via `cargo run`).

use demon_bench::{bench_repeats, median_ms, quest_block, scale, write_bench_json};
use demon_itemsets::{FrequentItemsets, TxStore};
use demon_store::StoreConfig;
use demon_types::{obs, BlockId, MinSupport, TxBlock};
use serde_json::json;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SPEC: &str = "1M.12L.1I.4pats.4plen";
const N_ITEMS: u32 = 1000;
const N_BLOCKS: u64 = 4;
/// A budget far below any single block: every fetch cycles the disk.
const TINY_BUDGET: u64 = 4096;

fn main() {
    let minsup = MinSupport::new(0.01).unwrap();
    let repeats = bench_repeats();
    let blocks = prepare();
    let n_txs: usize = blocks.iter().map(|b| b.len()).sum();

    // In-memory serial reference: the model every configuration must
    // reproduce, and the unbounded footprint the budgets divide.
    let (unbounded_bytes, reference) = {
        let mut store = TxStore::new(N_ITEMS);
        for b in &blocks {
            store.add_block(b.clone());
        }
        let ids: Vec<BlockId> = store.block_ids().to_vec();
        let model = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
        (
            store.resident_bytes(),
            serde_json::to_string(&model).unwrap(),
        )
    };
    println!(
        "# BENCH store: {n_txs} txs in {N_BLOCKS} blocks, {unbounded_bytes} bytes unbounded, \
         scale={}, repeats={repeats}",
        scale()
    );

    let configs: Vec<(&str, Option<u64>)> = vec![
        ("in_memory", None),
        ("budget_half", Some(unbounded_bytes / 2)),
        ("budget_eighth", Some(unbounded_bytes / 8)),
        ("budget_tiny", Some(TINY_BUDGET)),
    ];

    let mut sweep = Vec::new();
    let mut op_counts = serde_json::Map::new();
    for (name, budget) in &configs {
        let config = store_config(name, *budget);
        let mut replay_samples = Vec::with_capacity(repeats);
        let mut mine_samples = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let (replay, mine, model) = run(&config, &blocks, minsup);
            assert_eq!(
                model, reference,
                "{name}: mined model disagrees with the in-memory serial reference"
            );
            replay_samples.push(replay);
            mine_samples.push(mine);
        }
        let medians = json!({
            "replay": median_ms(&mut replay_samples),
            "mine": median_ms(&mut mine_samples),
        });
        println!("# {name}: {medians}");
        sweep.push(json!({
            "config": name,
            "budget_bytes": budget,
            "median_ms": medians,
        }));

        // One extra pass with the recorder on — the timed loops above run
        // with it off, so the medians are untouched by instrumentation.
        obs::reset();
        obs::enable();
        let (_, _, model) = run(&config, &blocks, minsup);
        obs::disable();
        assert_eq!(model, reference, "{name}: instrumented pass diverged");
        let mut section = serde_json::Map::new();
        for (counter, value) in obs::snapshot().counters {
            if value > 0 {
                section.insert(counter.to_string(), json!(value));
            }
        }
        if budget.is_some() {
            for required in ["store.evictions", "store.bytes_spilled"] {
                assert!(
                    section.get(required).is_some(),
                    "{name}: budgeted replay never touched the disk ({required} is zero)"
                );
            }
        }
        op_counts.insert(name.to_string(), json!(section));
    }

    write_bench_json(
        "BENCH_store.json",
        json!({
            "bench": "store",
            "spec": SPEC,
            "scale": scale(),
            "repeats": repeats,
            "n_blocks": N_BLOCKS,
            "n_transactions": n_txs,
            "unbounded_resident_bytes": unbounded_bytes,
            "configs": sweep,
            "op_counts": op_counts,
        }),
    );
}

/// The Quest stream, loaded as `N_BLOCKS` equal slices of the spec.
fn prepare() -> Vec<TxBlock> {
    let mut tid = 1u64;
    (1..=N_BLOCKS)
        .map(|b| {
            let block = quest_block(&slice(SPEC), b, BlockId(b), tid);
            tid += block.len() as u64;
            block
        })
        .collect()
}

/// Divides the spec's transaction count by `N_BLOCKS`.
fn slice(spec: &str) -> String {
    let mut parts: Vec<String> = spec.split('.').map(str::to_string).collect();
    let m: f64 = parts[0].trim_end_matches('M').parse().unwrap();
    parts[0] = format!("{}K", (m * 1000.0 / N_BLOCKS as f64).round() as u64);
    parts.join(".")
}

fn store_config(name: &str, budget: Option<u64>) -> StoreConfig {
    match budget {
        None => StoreConfig::InMemory,
        Some(bytes) => StoreConfig::budget(spill_dir(name), bytes),
    }
}

fn spill_dir(name: &str) -> PathBuf {
    std::env::temp_dir()
        .join(format!("demon-bench-store-{}", std::process::id()))
        .join(name)
}

/// Replays the stream into a fresh store under `config` and mines it,
/// returning the two phase timings and the mined model's JSON.
fn run(
    config: &StoreConfig,
    blocks: &[TxBlock],
    minsup: MinSupport,
) -> (Duration, Duration, String) {
    let mut store = TxStore::with_config(N_ITEMS, config).expect("store builds");
    let t0 = Instant::now();
    for b in blocks {
        store.add_block(b.clone());
    }
    let replay = t0.elapsed();
    let ids: Vec<BlockId> = store.block_ids().to_vec();
    let t1 = Instant::now();
    let model = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
    let mine = t1.elapsed();
    (replay, mine, serde_json::to_string(&model).unwrap())
}
