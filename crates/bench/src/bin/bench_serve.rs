//! `BENCH_serve.json` — the serving point of the repo's machine-readable
//! perf trajectory.
//!
//! Stands up an in-process `demon-serve` daemon (8 workers, ephemeral
//! port) and drives it with 1, 4 and 16 concurrent clients over a fixed
//! script: one client streams the block sequence while the others
//! interleave `query-model` and `stats` requests, the ingest-vs-query
//! mix the daemon is built for. Reports per-configuration request
//! throughput and the **median** ingest and query latencies across
//! `DEMON_BENCH_REPEATS` fresh daemon runs.
//!
//! Every configuration is run twice per repeat — once volatile and once
//! with a write-ahead log (fsync before every ingest ack) — so each row
//! carries both `ingest_median_ms` (WAL off) and `ingest_wal_median_ms`
//! (WAL on): the price of durability is a tracked number, not folklore.
//!
//! Every run asserts zero protocol errors and that the final served
//! model is byte-identical to a batch `mine_from` over the same blocks —
//! the numbers always describe a correct daemon.
//!
//! Knobs: `DEMON_SCALE` (block size, default 0.02) and
//! `DEMON_BENCH_REPEATS` (timed repeats per configuration, default 5).
//! The JSON is written to `BENCH_serve.json` in the working directory
//! (the repo root, when run via `cargo run`).

use demon_bench::{bench_repeats, median_ms, quest_block_sized, scale, write_bench_json};
use demon_itemsets::{FrequentItemsets, TxStore};
use demon_serve::{Client, ServeConfig, Server};
use demon_types::{BlockId, MinSupport, TxBlock};
use serde_json::json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const SPEC: &str = "2M.10L.1I.2pats.4plen";
const CLIENTS: [usize; 3] = [1, 4, 16];
const N_ITEMS: u32 = 1000;
const N_BLOCKS: u64 = 12;
/// Queries each non-ingesting client issues per run.
const QUERIES_PER_CLIENT: usize = 24;

fn main() {
    let minsup = MinSupport::new(0.02).unwrap();
    let repeats = bench_repeats();
    let blocks = make_blocks();
    let block_txs = blocks[0].len();
    println!(
        "# BENCH serve: {} blocks × {} transactions, scale={}, repeats={}",
        N_BLOCKS,
        block_txs,
        scale(),
        repeats
    );

    // The batch reference the served model must match byte-for-byte.
    let reference = reference_model_json(&blocks, minsup);

    let errors = AtomicU64::new(0);
    let wal_root = std::env::temp_dir().join(format!("demon-bench-wal-{}", std::process::id()));
    let mut sweep = Vec::new();
    for &n_clients in &CLIENTS {
        let mut ingest_samples = Vec::new();
        let mut wal_ingest_samples = Vec::new();
        let mut query_samples = Vec::new();
        let mut requests = 0u64;
        let mut elapsed = Duration::ZERO;
        for rep in 0..repeats {
            let run = drive(n_clients, &blocks, minsup, &reference, &errors, None);
            ingest_samples.extend(run.ingest);
            query_samples.extend(run.query);
            requests += run.requests;
            elapsed += run.elapsed;
            // The durable twin: a fresh WAL directory per run, so no
            // run recovers its predecessor's blocks. Throughput and
            // query medians stay the volatile numbers; this run only
            // contributes the durable ingest latency.
            let wal_dir = wal_root.join(format!("c{n_clients}-r{rep}"));
            let wal_run = drive(n_clients, &blocks, minsup, &reference, &errors, Some(wal_dir));
            wal_ingest_samples.extend(wal_run.ingest);
        }
        let throughput = requests as f64 / elapsed.as_secs_f64();
        let row = json!({
            "clients": n_clients,
            "requests": requests,
            "throughput_rps": throughput,
            "ingest_median_ms": median_ms(&mut ingest_samples),
            "ingest_wal_median_ms": median_ms(&mut wal_ingest_samples),
            "query_median_ms": median_ms(&mut query_samples),
        });
        println!("# clients={n_clients}: {row}");
        sweep.push(row);
    }
    std::fs::remove_dir_all(&wal_root).ok();

    let n_errors = errors.load(Ordering::SeqCst);
    assert_eq!(n_errors, 0, "protocol errors during the bench");
    write_bench_json(
        "BENCH_serve.json",
        json!({
            "bench": "serve",
            "spec": SPEC,
            "scale": scale(),
            "repeats": repeats,
            "blocks": N_BLOCKS,
            "block_txs": block_txs,
            "clients": sweep,
            "errors": n_errors,
        }),
    );
}

/// The fixed block sequence every daemon run ingests: `N_BLOCKS` Quest
/// blocks with globally monotonic TIDs.
fn make_blocks() -> Vec<TxBlock> {
    let per_block = ((scale() * 25_000.0) as usize).max(50);
    let mut tid = 1u64;
    let mut blocks = Vec::new();
    for id in 1..=N_BLOCKS {
        let b = quest_block_sized(SPEC, per_block, id, BlockId(id), tid);
        tid += b.len() as u64;
        blocks.push(b);
    }
    blocks
}

/// The batch model over the same blocks, as the server's canonical JSON.
fn reference_model_json(blocks: &[TxBlock], minsup: MinSupport) -> String {
    let mut store = TxStore::new(N_ITEMS);
    for b in blocks {
        store.add_block(b.clone());
    }
    let ids: Vec<BlockId> = blocks.iter().map(|b| b.id()).collect();
    let model = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
    serde_json::to_string(&model).unwrap()
}

struct RunResult {
    ingest: Vec<Duration>,
    query: Vec<Duration>,
    requests: u64,
    elapsed: Duration,
}

/// One timed daemon run: fresh server, `n_clients` concurrent clients,
/// the fixed ingest-vs-query script, graceful shutdown. With `wal_dir`
/// set the daemon serves durably (append + fsync before every ack).
fn drive(
    n_clients: usize,
    blocks: &[TxBlock],
    minsup: MinSupport,
    reference: &str,
    errors: &AtomicU64,
    wal_dir: Option<std::path::PathBuf>,
) -> RunResult {
    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, minsup);
    config.workers = 8;
    config.wal_dir = wal_dir;
    let server = Server::bind(config).expect("bind ephemeral daemon");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    // Seed the model before the query clients start, so `query-model`
    // is never answered with "no model yet".
    let mut seed_client = Client::connect(addr).expect("connect ingester");
    let t0 = Instant::now();
    let mut ingest = Vec::with_capacity(blocks.len());
    let first = Instant::now();
    if seed_client.ingest(N_ITEMS, &blocks[0]).is_err() {
        errors.fetch_add(1, Ordering::SeqCst);
    }
    ingest.push(first.elapsed());

    let mut query = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 1..n_clients {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect querier");
                let mut samples = Vec::with_capacity(QUERIES_PER_CLIENT);
                let mut failed = 0u64;
                for q in 0..QUERIES_PER_CLIENT {
                    let t = Instant::now();
                    let ok = if (q + c) % 2 == 0 {
                        client.query_model_json().is_ok()
                    } else {
                        client.stats_json().is_ok()
                    };
                    samples.push(t.elapsed());
                    failed += u64::from(!ok);
                }
                (samples, failed)
            }));
        }
        // The ingesting client streams the rest of the sequence while
        // the query clients hammer the read path.
        for b in &blocks[1..] {
            let t = Instant::now();
            if seed_client.ingest(N_ITEMS, b).is_err() {
                errors.fetch_add(1, Ordering::SeqCst);
            }
            ingest.push(t.elapsed());
        }
        if n_clients == 1 {
            // Solo configuration: the same client runs the query script
            // sequentially, so every configuration reports both medians.
            for q in 0..QUERIES_PER_CLIENT {
                let t = Instant::now();
                let ok = if q % 2 == 0 {
                    seed_client.query_model_json().is_ok()
                } else {
                    seed_client.stats_json().is_ok()
                };
                query.push(t.elapsed());
                errors.fetch_add(u64::from(!ok), Ordering::SeqCst);
            }
        }
        for h in handles {
            let (samples, failed) = h.join().expect("query client panicked");
            query.extend(samples);
            errors.fetch_add(failed, Ordering::SeqCst);
        }
    });
    let elapsed = t0.elapsed();

    // Correctness gate: the served model matches the batch reference.
    match seed_client.query_model_json() {
        Ok(json) => assert_eq!(json, *reference, "served model diverged from batch mine"),
        Err(_) => {
            errors.fetch_add(1, Ordering::SeqCst);
        }
    }
    seed_client.shutdown().expect("graceful shutdown");
    handle.join().expect("server thread").expect("server run");

    let requests =
        (blocks.len() + 2 + n_clients.saturating_sub(1).max(1) * QUERIES_PER_CLIENT) as u64;
    RunResult {
        ingest,
        query,
        requests,
        elapsed,
    }
}
