//! `BENCH_serve.json` — the serving point of the repo's machine-readable
//! perf trajectory.
//!
//! Sweeps **both serving architectures** over a shared client script:
//! `shards ∈ {1, 4}` × `clients ∈ {1, 4, 16, 64, 256}`. One client
//! streams the block sequence while the others interleave `query-model`
//! and `stats` requests — the ingest-vs-query mix the daemon is built
//! for. Each architecture runs at its natural thread budget: the
//! 1-shard daemon is thread-per-connection, so it gets one worker per
//! client; the 4-shard daemon serves every client count from 4
//! readiness-style event-loop threads.
//!
//! Reports per-row request throughput, the **median** ingest and query
//! latencies across `DEMON_BENCH_REPEATS` fresh daemon runs, and a
//! queue-depth histogram sampled from the daemon's own `Stats` answers
//! (per-shard in the 4-shard rows). The top-level `shard_speedup_64c`
//! field is the 4-shard ÷ 1-shard throughput ratio at 64 clients — the
//! headline number the sharding work is gated on.
//!
//! The histogram pins down *why* the 1-shard `ingest_median_ms` used
//! to roughly double from 4 to 16 clients: the old sweep drove 16
//! clients plus the ingester into a fixed 8-worker thread-per-connection
//! pool, so ingest acks queued behind whole query connections being
//! served to completion. The ingest queue itself was never the
//! bottleneck — the histograms show it at depth 0–1 throughout — the
//! backlog lived in connection scheduling. Sizing the pool to the
//! client count removes the rise (legacy ingest is now flat from 1 to
//! 256 clients); the 4-shard rows accept a higher ingest median at
//! extreme client counts (the sequencer shares the core with saturated
//! loop threads and publishes a replica per block) as the disclosed
//! price of the query-throughput win.
//!
//! Every configuration is run twice per repeat — once volatile and once
//! with a write-ahead log (fsync before every ingest ack) — so each row
//! carries both `ingest_median_ms` (WAL off) and `ingest_wal_median_ms`
//! (WAL on): the price of durability is a tracked number, not folklore.
//!
//! Every run asserts zero protocol errors and that the final served
//! model is byte-identical to a batch `mine_from` over the same blocks —
//! the numbers always describe a correct daemon, at every shard count.
//!
//! Knobs: `DEMON_SCALE` (block size, default 0.02) and
//! `DEMON_BENCH_REPEATS` (timed repeats per configuration, default 5).
//! The JSON is written to `BENCH_serve.json` in the working directory
//! (the repo root, when run via `cargo run`).

use demon_bench::{bench_repeats, median_ms, quest_block_sized, scale, write_bench_json};
use demon_itemsets::{FrequentItemsets, TxStore};
use demon_serve::{Client, ServeConfig, Server};
use demon_types::{BlockId, MinSupport, TxBlock};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const SPEC: &str = "2M.10L.1I.2pats.4plen";
const SHARDS: [usize; 2] = [1, 4];
const CLIENTS: [usize; 5] = [1, 4, 16, 64, 256];
const N_ITEMS: u32 = 1000;
const N_BLOCKS: u64 = 12;

/// Queries each non-ingesting client issues per run. Scaled down at
/// high client counts so the total query volume per run stays bounded
/// while the *concurrency* keeps rising.
fn queries_per_client(n_clients: usize) -> usize {
    if n_clients >= 64 {
        16
    } else {
        24
    }
}

fn main() {
    let minsup = MinSupport::new(0.02).unwrap();
    let repeats = bench_repeats();
    let blocks = make_blocks();
    let block_txs = blocks[0].len();
    println!(
        "# BENCH serve: {} blocks × {} transactions, scale={}, repeats={}",
        N_BLOCKS,
        block_txs,
        scale(),
        repeats
    );

    // The batch reference every served model must match byte-for-byte.
    let reference = reference_model_json(&blocks, minsup);

    let errors = AtomicU64::new(0);
    let wal_root = std::env::temp_dir().join(format!("demon-bench-wal-{}", std::process::id()));
    let mut rows = Vec::new();
    let mut throughput_64c: BTreeMap<usize, f64> = BTreeMap::new();
    for &n_shards in &SHARDS {
        for &n_clients in &CLIENTS {
            let mut ingest_samples = Vec::new();
            let mut wal_ingest_samples = Vec::new();
            let mut query_samples = Vec::new();
            let mut depth_hist: Vec<BTreeMap<u64, u64>> = Vec::new();
            let mut requests = 0u64;
            let mut rep_throughput = Vec::with_capacity(repeats);
            for rep in 0..repeats {
                let run = drive(n_shards, n_clients, &blocks, minsup, &reference, &errors, None);
                ingest_samples.extend(run.ingest);
                query_samples.extend(run.query);
                merge_hists(&mut depth_hist, run.depth_hist);
                requests += run.requests;
                rep_throughput.push(run.requests as f64 / run.elapsed.as_secs_f64());
                // The durable twin: a fresh WAL directory per run, so no
                // run recovers its predecessor's blocks. Throughput and
                // query medians stay the volatile numbers; this run only
                // contributes the durable ingest latency.
                let wal_dir = wal_root.join(format!("s{n_shards}-c{n_clients}-r{rep}"));
                let wal_run = drive(
                    n_shards,
                    n_clients,
                    &blocks,
                    minsup,
                    &reference,
                    &errors,
                    Some(wal_dir),
                );
                wal_ingest_samples.extend(wal_run.ingest);
            }
            // Median of the per-repeat throughputs: one scheduler-noise
            // repeat (hundreds of threads on small machines) must not
            // sink or inflate the row.
            rep_throughput.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let throughput = rep_throughput[rep_throughput.len() / 2];
            if n_clients == 64 {
                throughput_64c.insert(n_shards, throughput);
            }
            let row = json!({
                // The served model class. The sweep drives the itemset
                // daemon (sharding is itemsets-only); rows for other
                // classes can join the schema without breaking readers.
                "model": "itemsets",
                "shards": n_shards,
                "clients": n_clients,
                "requests": requests,
                "throughput_rps": throughput,
                "ingest_median_ms": median_ms(&mut ingest_samples),
                "ingest_wal_median_ms": median_ms(&mut wal_ingest_samples),
                "query_median_ms": median_ms(&mut query_samples),
                "queue_depth_hist": depth_hist
                    .iter()
                    .map(|h| {
                        let mut obj = serde_json::Map::new();
                        for (depth, n) in h {
                            obj.insert(depth.to_string(), json!(n));
                        }
                        serde_json::Value::Object(obj)
                    })
                    .collect::<Vec<_>>(),
            });
            println!("# shards={n_shards} clients={n_clients}: {row}");
            rows.push(row);
        }
    }
    std::fs::remove_dir_all(&wal_root).ok();

    let n_errors = errors.load(Ordering::SeqCst);
    assert_eq!(n_errors, 0, "protocol errors during the bench");
    let speedup = throughput_64c[&4] / throughput_64c[&1];
    println!("# shard_speedup_64c = {speedup:.2}");
    write_bench_json(
        "BENCH_serve.json",
        json!({
            "bench": "serve",
            "spec": SPEC,
            "scale": scale(),
            "repeats": repeats,
            "blocks": N_BLOCKS,
            "block_txs": block_txs,
            "rows": rows,
            "shard_speedup_64c": speedup,
            "errors": n_errors,
        }),
    );
}

/// The fixed block sequence every daemon run ingests: `N_BLOCKS` Quest
/// blocks with globally monotonic TIDs.
fn make_blocks() -> Vec<TxBlock> {
    let per_block = ((scale() * 25_000.0) as usize).max(50);
    let mut tid = 1u64;
    let mut blocks = Vec::new();
    for id in 1..=N_BLOCKS {
        let b = quest_block_sized(SPEC, per_block, id, BlockId(id), tid);
        tid += b.len() as u64;
        blocks.push(b);
    }
    blocks
}

/// The batch model over the same blocks, as the server's canonical JSON.
fn reference_model_json(blocks: &[TxBlock], minsup: MinSupport) -> String {
    let mut store = TxStore::new(N_ITEMS);
    for b in blocks {
        store.add_block(b.clone());
    }
    let ids: Vec<BlockId> = blocks.iter().map(|b| b.id()).collect();
    let model = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
    serde_json::to_string(&model).unwrap()
}

/// Pulls the queue-depth gauges out of a `Stats` body: the per-shard
/// `"shard_queue_depths":[..]` when present, the single
/// `"queue_depth":N` otherwise.
fn parse_depths(stats: &str) -> Vec<u64> {
    if let Some(tail) = stats.split("\"shard_queue_depths\":[").nth(1) {
        if let Some(list) = tail.split(']').next() {
            return list
                .split(',')
                .filter_map(|v| v.trim().parse().ok())
                .collect();
        }
    }
    stats
        .split("\"queue_depth\":")
        .nth(1)
        .and_then(|tail| {
            tail.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .ok()
        })
        .map(|d| vec![d])
        .unwrap_or_default()
}

/// Folds one run's per-shard histograms into the row accumulator.
fn merge_hists(acc: &mut Vec<BTreeMap<u64, u64>>, run: Vec<BTreeMap<u64, u64>>) {
    if acc.len() < run.len() {
        acc.resize(run.len(), BTreeMap::new());
    }
    for (a, r) in acc.iter_mut().zip(run) {
        for (depth, n) in r {
            *a.entry(depth).or_insert(0) += n;
        }
    }
}

struct RunResult {
    ingest: Vec<Duration>,
    query: Vec<Duration>,
    /// Queue-depth observations from this run's `Stats` answers, one
    /// histogram per shard (one total for the 1-shard daemon).
    depth_hist: Vec<BTreeMap<u64, u64>>,
    requests: u64,
    elapsed: Duration,
}

/// One timed daemon run: fresh server, `n_clients` concurrent clients,
/// the fixed ingest-vs-query script, graceful shutdown. With `wal_dir`
/// set the daemon serves durably (append + fsync before every ack).
fn drive(
    n_shards: usize,
    n_clients: usize,
    blocks: &[TxBlock],
    minsup: MinSupport,
    reference: &str,
    errors: &AtomicU64,
    wal_dir: Option<std::path::PathBuf>,
) -> RunResult {
    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, minsup);
    config.shards = n_shards;
    // Thread-per-connection needs a worker per client; the event loop
    // serves any client count from a fixed four threads.
    config.workers = if n_shards == 1 { n_clients.max(2) } else { 4 };
    config.wal_dir = wal_dir;
    let server = Server::bind(config).expect("bind ephemeral daemon");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let queries_each = queries_per_client(n_clients);

    // Seed the model before the query clients start, so `query-model`
    // is never answered with "no model yet".
    let mut seed_client = Client::connect(addr).expect("connect ingester");
    let t0 = Instant::now();
    let mut ingest = Vec::with_capacity(blocks.len());
    let first = Instant::now();
    if seed_client.ingest(N_ITEMS, &blocks[0]).is_err() {
        errors.fetch_add(1, Ordering::SeqCst);
    }
    ingest.push(first.elapsed());

    let mut query = Vec::new();
    let depth_hist: Mutex<Vec<BTreeMap<u64, u64>>> = Mutex::new(Vec::new());
    let observe_depths = |stats: &str| {
        let depths = parse_depths(stats);
        let mut acc = depth_hist.lock().unwrap();
        if acc.len() < depths.len() {
            acc.resize(depths.len(), BTreeMap::new());
        }
        for (h, d) in acc.iter_mut().zip(depths) {
            *h.entry(d).or_insert(0) += 1;
        }
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 1..n_clients {
            let observe_depths = &observe_depths;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect querier");
                let mut samples = Vec::with_capacity(queries_each);
                let mut failed = 0u64;
                for q in 0..queries_each {
                    let t = Instant::now();
                    let ok = if (q + c) % 2 == 0 {
                        client.query_model_json().is_ok()
                    } else {
                        match client.stats_json() {
                            Ok(stats) => {
                                observe_depths(&stats);
                                true
                            }
                            Err(_) => false,
                        }
                    };
                    samples.push(t.elapsed());
                    failed += u64::from(!ok);
                }
                (samples, failed)
            }));
        }
        // The ingesting client streams the rest of the sequence while
        // the query clients hammer the read path.
        for b in &blocks[1..] {
            let t = Instant::now();
            if seed_client.ingest(N_ITEMS, b).is_err() {
                errors.fetch_add(1, Ordering::SeqCst);
            }
            ingest.push(t.elapsed());
        }
        if n_clients == 1 {
            // Solo configuration: the same client runs the query script
            // sequentially, so every configuration reports both medians.
            for q in 0..queries_each {
                let t = Instant::now();
                let ok = if q % 2 == 0 {
                    seed_client.query_model_json().is_ok()
                } else {
                    match seed_client.stats_json() {
                        Ok(stats) => {
                            observe_depths(&stats);
                            true
                        }
                        Err(_) => false,
                    }
                };
                query.push(t.elapsed());
                errors.fetch_add(u64::from(!ok), Ordering::SeqCst);
            }
        }
        for h in handles {
            let (samples, failed) = h.join().expect("query client panicked");
            query.extend(samples);
            errors.fetch_add(failed, Ordering::SeqCst);
        }
    });
    let elapsed = t0.elapsed();

    // Correctness gate: the served model matches the batch reference —
    // the sharded daemon is held to the same byte-identity as 1-shard.
    match seed_client.query_model_json() {
        Ok(json) => assert_eq!(json, *reference, "served model diverged from batch mine"),
        Err(_) => {
            errors.fetch_add(1, Ordering::SeqCst);
        }
    }
    seed_client.shutdown().expect("graceful shutdown");
    handle.join().expect("server thread").expect("server run");

    let n_queriers = if n_clients == 1 { 1 } else { n_clients - 1 };
    let requests = (blocks.len() + 2 + n_queriers * queries_each) as u64;
    RunResult {
        ingest,
        query,
        depth_hist: depth_hist.into_inner().unwrap(),
        requests,
        elapsed,
    }
}
