//! `BENCH_maintenance.json` — the GEMM window-maintenance point of the
//! repo's machine-readable perf trajectory.
//!
//! Streams Quest blocks through a GEMM instance (window `w = 4`, all
//! blocks selected, frequent-itemset maintainer) and times the whole
//! arrival path — current-model update plus the off-line fan-out over the
//! `w−1` future-window models, which is the part that parallelizes —
//! sweeping the thread count 1/2/4/8 and reporting the **median** total
//! wall time per sweep. The final current model is asserted identical
//! across thread counts on every run.
//!
//! Knobs: `DEMON_SCALE` (dataset size, default 0.02) and
//! `DEMON_BENCH_REPEATS` (timed repeats per configuration, default 5).
//! The JSON is written to `BENCH_maintenance.json` in the working
//! directory (the repo root, when run via `cargo run`).

use demon_bench::{bench_repeats, median_ms, quest_block, scale, write_bench_json};
use demon_core::{BlockSelector, Gemm, ItemsetMaintainer};
use demon_itemsets::CounterKind;
use demon_types::{obs, BlockId, MinSupport, Parallelism, TxBlock};
use serde_json::json;
use std::time::Instant;

const SPEC: &str = "500K.20L.1I.4pats.4plen";
const THREADS: [usize; 4] = [1, 2, 4, 8];
const W: usize = 4;
const N_BLOCKS: u64 = 6;

fn main() {
    let minsup = MinSupport::new(0.01).unwrap();
    let repeats = bench_repeats();
    let blocks = make_blocks();
    println!(
        "# BENCH maintenance: w={W}, {} blocks of ~{} txs, scale={}, repeats={}",
        blocks.len(),
        blocks.first().map_or(0, TxBlock::len),
        scale(),
        repeats
    );

    let run = |par: Parallelism| {
        let maintainer = ItemsetMaintainer::new(1000, minsup, CounterKind::Ecut);
        let mut gemm = Gemm::new(maintainer, W, BlockSelector::all())
            .unwrap()
            .with_parallelism(par);
        let t0 = Instant::now();
        for block in &blocks {
            gemm.add_block(block.clone()).unwrap();
        }
        let elapsed = t0.elapsed();
        let frequent = gemm.current_model().unwrap().frequent_sorted();
        (elapsed, frequent)
    };

    let (_, reference) = run(Parallelism::serial());
    let mut sweep = Vec::new();
    for &t in &THREADS {
        let mut samples = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let (elapsed, frequent) = run(Parallelism::new(t));
            assert_eq!(
                reference, frequent,
                "current model diverged at {t} threads"
            );
            samples.push(elapsed);
        }
        let median = median_ms(&mut samples);
        println!("# threads={t}: median_ms={median:.2}");
        sweep.push(json!({ "threads": t, "median_ms": { "gemm_stream": median } }));
    }

    // Operation counts for one full stream: an extra serial pass with the
    // recorder on, so the timed medians above stay instrumentation-free.
    obs::reset();
    obs::enable();
    let _ = run(Parallelism::serial());
    obs::disable();
    let mut op_counts = serde_json::Map::new();
    for (name, value) in obs::snapshot().counters {
        if value > 0 {
            op_counts.insert(name.to_string(), json!(value));
        }
    }

    write_bench_json(
        "BENCH_maintenance.json",
        json!({
            "bench": "maintenance",
            "spec": SPEC,
            "scale": scale(),
            "repeats": repeats,
            "window": W,
            "n_blocks": N_BLOCKS,
            "threads": sweep,
            "op_counts": op_counts,
        }),
    );
}

fn make_blocks() -> Vec<TxBlock> {
    let mut tid = 1u64;
    (1..=N_BLOCKS)
        .map(|b| {
            let block = quest_block(SPEC, b, BlockId(b), tid);
            tid += block.len() as u64;
            block
        })
        .collect()
}
