//! **Figure 2** — update-phase counting time vs. number of candidate
//! itemsets, for PT-Scan, ECUT and ECUT+.
//!
//! Paper setting: datasets `{2,4}M.20L.1I.4pats.4plen`, κ = 0.01; a set
//! `S` of itemsets drawn from the negative border is counted against the
//! whole dataset, |S| swept from 5 to 180. Expected shape: all three scale
//! linearly in |S|; ECUT wins below |S| ≈ 75, ECUT+ wins everywhere, with
//! ≈ 2× (ECUT) and ≈ 8× (ECUT+) advantages at small |S|.

use demon_bench::{banner, ms, quest_block, Table};
use demon_itemsets::counter::count_supports;
use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon_types::{BlockId, ItemSet, MinSupport};
use std::time::Instant;

/// Modeled cost (in TID units) of one random TID-list fetch on the
/// paper's 1996 disk: with per-item clustering of list segments, one
/// fetch costs roughly 4 KB of sequential reading (≈ 1000 4-byte TIDs).
/// Charging this per list is what turns ECUT's many small reads into the
/// PT-Scan crossover the paper observes around |S| ≈ 75; in-memory wall
/// time (also reported) has no such penalty, so ECUT wins throughout.
const SEEK_UNITS: u64 = 1000;

fn main() {
    banner(
        "Figure 2",
        "counting time vs number of itemsets",
        "datasets {2M,4M}.20L.1I.4pats.4plen, minsup=0.01, S ⊆ NB⁻",
    );
    let minsup = MinSupport::new(0.01).unwrap();
    let sizes = [5usize, 10, 20, 40, 75, 120, 180];
    let mut table = Table::new(
        "fig2",
        &[
            "dataset",
            "n_itemsets",
            "ptscan_ms",
            "ecut_ms",
            "ecutplus_ms",
            "ptscan_units",
            "ecut_units",
            "ecutplus_units",
            "ptscan_io96",
            "ecut_io96",
            "ecutplus_io96",
        ],
    );

    for spec in ["2M.20L.1I.4pats.4plen", "4M.20L.1I.4pats.4plen"] {
        let (store, ids, border) = prepare(spec, minsup);
        let label = spec.split('.').next().unwrap();
        // Warm the allocator/page cache so the first timed row is clean.
        let warm: Vec<ItemSet> = border.iter().take(5).cloned().collect();
        for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
            count_supports(kind, &store, &ids, &warm);
        }
        for &s in &sizes {
            let cands: Vec<ItemSet> = border.iter().take(s).cloned().collect();
            if cands.len() < s {
                eprintln!("(border smaller than {s}; using {})", cands.len());
            }
            let mut cells: Vec<f64> = Vec::new();
            let mut units: Vec<u64> = Vec::new();
            let mut io96: Vec<u64> = Vec::new();
            let mut counts_ref: Option<Vec<u64>> = None;
            for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
                let t0 = Instant::now();
                let r = count_supports(kind, &store, &ids, &cands);
                cells.push(ms(t0.elapsed()));
                units.push(r.units_read);
                io96.push(r.units_read + SEEK_UNITS * r.lists_fetched);
                // Cross-check the backends against each other.
                match &counts_ref {
                    None => counts_ref = Some(r.counts),
                    Some(reference) => assert_eq!(reference, &r.counts, "{} disagrees", kind.name()),
                }
            }
            table.row(&[
                &label,
                &cands.len(),
                &format!("{:.2}", cells[0]),
                &format!("{:.2}", cells[1]),
                &format!("{:.2}", cells[2]),
                &units[0],
                &units[1],
                &units[2],
                &io96[0],
                &io96[1],
                &io96[2],
            ]);
        }
    }
}

/// Builds the store (4 blocks), mines the model, materializes all frequent
/// 2-itemsets (the paper's ECUT+ setting for this figure), and returns a
/// deterministically shuffled negative border.
fn prepare(
    spec: &str,
    minsup: MinSupport,
) -> (TxStore, Vec<BlockId>, Vec<ItemSet>) {
    let n_items = 1000;
    let mut store = TxStore::new(n_items);
    let mut tid = 1u64;
    let mut ids = Vec::new();
    for b in 1..=4u64 {
        let block = quest_block(&quarter_spec(spec), b, BlockId(b), tid);
        tid += block.len() as u64;
        ids.push(block.id());
        store.add_block(block);
    }
    let model = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
    let pairs = model.frequent_pairs_by_support();
    for &id in &ids {
        store.materialize_pairs(id, &pairs, None);
    }
    // Deterministic shuffle of the border ("randomly selected a set of
    // itemsets S from the negative border").
    // Realistic update-phase candidates have size ≥ 2 (they are generated
    // by prefix joins); singletons are always tracked and never re-counted.
    use rand::prelude::*;
    let mut border: Vec<ItemSet> = model
        .border()
        .keys()
        .filter(|s| s.len() >= 2)
        .cloned()
        .collect();
    border.sort();
    border.shuffle(&mut StdRng::seed_from_u64(42));
    (store, ids, border)
}

/// Divides the spec's transaction count by 4 (we load it as 4 blocks).
fn quarter_spec(spec: &str) -> String {
    let mut parts: Vec<String> = spec.split('.').map(str::to_string).collect();
    let m: f64 = parts[0].trim_end_matches('M').parse().unwrap();
    parts[0] = format!("{}K", (m * 1000.0 / 4.0).round() as u64);
    parts.join(".")
}
