//! **Figure 9** (table) — calendar patterns discovered in the web proxy
//! trace at five block granularities.
//!
//! The real DEC traces being unavailable, the synthetic trace plants the
//! same calendar structure (working-day business hours, Tue/Thu evenings,
//! weekend/holiday leisure, one anomalous Monday 9-9-1996). Expected
//! shape: compact sequences recovering "working days except 9-9-1996"
//! style patterns at each granularity, with the anomalous Monday excluded
//! from every working-day pattern.

use demon_bench::{banner, scale};
use demon_core::report;
use demon_datagen::webtrace::{self, WebTraceConfig, WebTraceGen};
use demon_focus::{CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig};
use demon_types::{MinSupport, Timestamp};

fn main() {
    banner(
        "Figure 9",
        "patterns discovered in the (synthetic) web proxy trace",
        "21 days, 10 object types × 1000 size buckets, κ=0.01, granularities {4,6,8,12,24}h",
    );
    let base_rate = std::env::var("DEMON_TRACE_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| (2000.0 * scale() * 10.0).max(200.0));
    let alpha = std::env::var("DEMON_ALPHA")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.12);
    println!("# base_rate={base_rate}/h alpha={alpha}");

    let mut gen = WebTraceGen::new(WebTraceConfig {
        base_rate,
        ..WebTraceConfig::default()
    });
    let requests = gen.generate();
    println!("# trace: {} requests over 21 days", requests.len());

    for granularity in [4u64, 6, 8, 12, 24] {
        // The paper numbers blocks from noon of day 0 for the 6-hour
        // experiment; we do the same at every granularity except 8/24h,
        // which align with the trace start (8 AM).
        let start_hour = if granularity == 8 || granularity == 24 { 8 } else { 12 };
        let blocks =
            webtrace::segment_into_blocks(&requests, granularity, Timestamp::from_day_hour(0, start_hour));
        let oracle = ItemsetSimilarity::new(
            webtrace::N_ITEMS,
            MinSupport::new(0.01).unwrap(),
            SimilarityConfig::Threshold { alpha },
        );
        let mut miner = CompactSequenceMiner::new(oracle);
        let intervals: Vec<_> = blocks.iter().map(|b| b.interval().unwrap()).collect();
        for block in blocks {
            miner.add_block(block);
        }
        println!("\n== granularity {granularity}h ({} blocks) ==", intervals.len());
        let mut rows: Vec<(usize, String)> = Vec::new();
        for seq in miner.maximal_sequences() {
            if seq.len() < 4 {
                continue;
            }
            let ivs: Vec<_> = seq.iter().map(|id| intervals[id.index()]).collect();
            let pattern = report::describe(&ivs);
            rows.push((seq.len(), pattern.description));
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.0));
        rows.dedup_by(|a, b| a.1 == b.1);
        for (len, desc) in rows.iter().take(12) {
            println!("{len:>3} blocks  {desc}");
        }
        if rows.is_empty() {
            println!("(no sequence of length ≥ 4)");
        }
    }
}
