//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the DEMON paper (see DESIGN.md for the experiment index).
//!
//! The paper's absolute dataset sizes target a 200 MHz Pentium Pro; the
//! harness scales them by the `DEMON_SCALE` environment variable
//! (default 0.02 — e.g. the `2M` dataset becomes 40 000 transactions).
//! Only absolute times change with the scale; the *shapes* the paper
//! argues from (who wins, by what factor, where crossovers fall) are
//! scale-stable because every algorithm sees the same data.
//!
//! # Paper → binary map
//!
//! | Paper figure | Experiment | Binary |
//! |---|---|---|
//! | Fig. 2 | counting time vs number of itemsets | `fig2` |
//! | Fig. 3 | counting time vs minimum support | `fig3` |
//! | Figs. 4–7 | BORDERS response time vs block size | `fig4to7` |
//! | Fig. 8 | BIRCH vs BIRCH+ | `fig8` |
//! | Fig. 9 | GEMM window maintenance | `fig9` |
//! | Fig. 10 | compact-sequence update cost | `fig10` |
//! | — | ablations (FUP, AuM, dilution, budgets) | `ablation_*` |
//!
//! # Perf trajectory
//!
//! Two additional binaries emit machine-readable JSON at the repo root —
//! the perf points tracked across releases (see DESIGN.md,
//! "Benchmarking & perf trajectory"): `bench_counting` writes
//! `BENCH_counting.json` and `bench_maintenance` writes
//! `BENCH_maintenance.json`, each a 1/2/4/8 thread sweep of median wall
//! times with the knobs `DEMON_SCALE` and `DEMON_BENCH_REPEATS`.
//! `bench_serve` writes `BENCH_serve.json`, a 1/4/16-client sweep of the
//! TCP daemon's request throughput and ingest/query latency medians
//! under the same knobs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use demon_datagen::{QuestGen, QuestParams};
use demon_types::{Block, BlockId, Tid, Transaction, TxBlock};
use std::fmt::Display;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// The dataset scale factor, from `DEMON_SCALE` (default `0.02`).
pub fn scale() -> f64 {
    std::env::var("DEMON_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(0.02)
}

/// Generates a transaction block from a paper-notation Quest spec, with
/// TIDs starting at `tid_start` (keeps TIDs globally monotonic across
/// blocks, as systematic evolution guarantees).
pub fn quest_block(spec: &str, seed: u64, id: BlockId, tid_start: u64) -> TxBlock {
    let params = QuestParams::parse(spec, scale()).expect("valid quest spec");
    let mut gen = QuestGen::new(params, seed);
    let txs = gen.generate_all();
    Block::new(id, renumber(txs, tid_start))
}

/// Generates `n` transactions (ignoring the spec's own count) — used for
/// the block-size sweeps of Figures 4–7.
pub fn quest_block_sized(
    spec: &str,
    n: usize,
    seed: u64,
    id: BlockId,
    tid_start: u64,
) -> TxBlock {
    let params = QuestParams::parse(spec, 1.0).expect("valid quest spec");
    let mut gen = QuestGen::new(params, seed);
    let txs = gen.take_transactions(n);
    Block::new(id, renumber(txs, tid_start))
}

fn renumber(txs: Vec<Transaction>, tid_start: u64) -> Vec<Transaction> {
    txs.into_iter()
        .enumerate()
        .map(|(i, t)| Transaction::from_sorted(Tid(tid_start + i as u64), t.items().to_vec()))
        .collect()
}

/// Milliseconds with two decimals — the unit every table prints.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Timed repeats per configuration for the `BENCH_*.json` binaries, from
/// `DEMON_BENCH_REPEATS` (default 5).
pub fn bench_repeats() -> usize {
    std::env::var("DEMON_BENCH_REPEATS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5)
}

/// The median of a set of timing samples, in milliseconds. Sorts the
/// slice; for an even count, returns the mean of the two middle samples.
pub fn median_ms(samples: &mut [Duration]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_unstable();
    let n = samples.len();
    if n % 2 == 1 {
        ms(samples[n / 2])
    } else {
        (ms(samples[n / 2 - 1]) + ms(samples[n / 2])) / 2.0
    }
}

/// Writes one point of the perf trajectory as pretty-printed JSON to
/// `path` (relative to the working directory — the repo root when run via
/// `cargo run`), replacing any previous run's file.
pub fn write_bench_json(path: &str, value: serde_json::Value) {
    let body = serde_json::to_string_pretty(&value).expect("bench JSON serializes");
    std::fs::write(path, body + "\n").expect("bench JSON written");
    println!("# wrote {path}");
}

/// A result table that tees rows to stdout and to `results/<name>.csv`.
pub struct Table {
    name: String,
    columns: Vec<String>,
    csv: Option<std::fs::File>,
}

impl Table {
    /// Opens a table with the given column headers.
    pub fn new(name: &str, columns: &[&str]) -> Table {
        let dir = PathBuf::from("results");
        let csv = std::fs::create_dir_all(&dir)
            .ok()
            .and_then(|()| std::fs::File::create(dir.join(format!("{name}.csv"))).ok());
        let mut t = Table {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            csv,
        };
        t.write_header();
        t
    }

    fn write_header(&mut self) {
        println!("{}", self.columns.join("\t"));
        if let Some(f) = &mut self.csv {
            let _ = writeln!(f, "{}", self.columns.join(","));
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        let strs: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        println!("{}", strs.join("\t"));
        if let Some(f) = &mut self.csv {
            let _ = writeln!(f, "{}", strs.join(","));
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Prints the standard experiment banner.
pub fn banner(figure: &str, what: &str, params: &str) {
    println!("# {figure}: {what}");
    println!("# {params}");
    println!("# DEMON_SCALE={} (paper sizes × scale)", scale());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_and_parses() {
        // Note: avoids mutating the environment (tests run in parallel);
        // just checks the default path.
        let s = scale();
        assert!(s > 0.0);
    }

    #[test]
    fn quest_block_renumbers_tids() {
        let b = quest_block("10K.10L.1I.2pats.4plen", 1, BlockId(2), 500);
        assert_eq!(b.id(), BlockId(2));
        assert!(!b.is_empty());
        assert_eq!(b.records()[0].tid(), Tid(500));
        let last = b.records().last().unwrap().tid();
        assert_eq!(last, Tid(500 + b.len() as u64 - 1));
    }

    #[test]
    fn quest_block_sized_overrides_count() {
        let b = quest_block_sized("2M.10L.1I.2pats.4plen", 123, 1, BlockId(1), 1);
        assert_eq!(b.len(), 123);
    }

    #[test]
    fn ms_converts() {
        assert_eq!(ms(Duration::from_millis(250)), 250.0);
    }

    #[test]
    fn median_handles_odd_and_even_counts() {
        let mut odd = vec![
            Duration::from_millis(30),
            Duration::from_millis(10),
            Duration::from_millis(20),
        ];
        assert_eq!(median_ms(&mut odd), 20.0);
        let mut even = vec![
            Duration::from_millis(10),
            Duration::from_millis(40),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        assert_eq!(median_ms(&mut even), 25.0);
    }

    #[test]
    fn bench_repeats_defaults_positive() {
        assert!(bench_repeats() > 0);
    }
}
