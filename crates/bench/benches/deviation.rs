//! Criterion benchmarks of the FOCUS deviation (the machinery behind
//! Figures 9–10): deviation between similar blocks (cheap — supports come
//! from the models) vs. dissimilar blocks (expensive — both blocks are
//! scanned), and one compact-sequence update step.

use criterion::{criterion_group, criterion_main, Criterion};
use demon_datagen::webtrace::{self, WebTraceConfig, WebTraceGen};
use demon_focus::deviation::itemset_deviation;
use demon_focus::{CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig};
use demon_itemsets::FrequentItemsets;
use demon_types::{MinSupport, Timestamp, TxBlock};
use std::hint::black_box;

fn trace_blocks() -> Vec<TxBlock> {
    let mut gen = WebTraceGen::new(WebTraceConfig {
        days: 7,
        base_rate: 400.0,
        ..WebTraceConfig::default()
    });
    let reqs = gen.generate();
    webtrace::segment_into_blocks(&reqs, 6, Timestamp::from_day_hour(0, 12))
}

fn bench_deviation(c: &mut Criterion) {
    let blocks = trace_blocks();
    let minsup = MinSupport::new(0.01).unwrap();
    let model = |b: &TxBlock| FrequentItemsets::mine_blocks(&[b], webtrace::N_ITEMS, minsup);
    // Blocks 2 and 6 are both working-day business blocks (similar);
    // block 20 lands on the weekend (dissimilar).
    let (a, b, weekend) = (&blocks[2], &blocks[6], &blocks[20]);
    let (ma, mb, mw) = (model(a), model(b), model(weekend));

    c.bench_function("deviation/similar_blocks", |bench| {
        bench.iter(|| itemset_deviation(black_box(a), &ma, black_box(b), &mb))
    });
    c.bench_function("deviation/dissimilar_blocks", |bench| {
        bench.iter(|| itemset_deviation(black_box(a), &ma, black_box(weekend), &mw))
    });
}

fn bench_compact_step(c: &mut Criterion) {
    let blocks = trace_blocks();
    let mut group = c.benchmark_group("compact_sequences");
    group.sample_size(10);
    group.bench_function("absorb_trace_week", |bench| {
        bench.iter(|| {
            let oracle = ItemsetSimilarity::new(
                webtrace::N_ITEMS,
                MinSupport::new(0.01).unwrap(),
                SimilarityConfig::Threshold { alpha: 0.25 },
            );
            let mut miner = CompactSequenceMiner::new(oracle);
            for b in blocks.iter().cloned() {
                miner.add_block(black_box(b));
            }
            miner.maximal_sequences().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_deviation, bench_compact_step);
criterion_main!(benches);
