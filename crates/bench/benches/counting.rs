//! Criterion micro-benchmarks of the support-counting backends (the
//! machinery behind Figure 2): TID-list intersection, PT-Scan, ECUT and
//! ECUT+ on a fixed candidate set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use demon_bench::quest_block;
use demon_itemsets::counter::count_supports;
use demon_itemsets::tidlist::{intersect_all, intersect_pair};
use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon_types::{BlockId, ItemSet, MinSupport, Tid};
use std::hint::black_box;

fn bench_intersection(c: &mut Criterion) {
    let a: Vec<Tid> = (0..10_000u64).map(|i| Tid(i * 3)).collect();
    let b: Vec<Tid> = (0..10_000u64).map(|i| Tid(i * 5)).collect();
    let short: Vec<Tid> = (0..100u64).map(|i| Tid(i * 300)).collect();
    c.bench_function("intersect_pair/balanced", |bench| {
        bench.iter(|| intersect_pair(black_box(&a), black_box(&b)))
    });
    c.bench_function("intersect_pair/skewed_gallop", |bench| {
        bench.iter(|| intersect_pair(black_box(&short), black_box(&a)))
    });
    let lists: Vec<&[Tid]> = vec![&a, &b, &short];
    c.bench_function("intersect_all/3way", |bench| {
        bench.iter(|| intersect_all(black_box(&lists)))
    });
}

/// Footnote 7: the paper chose the prefix tree over the hash tree for
/// candidate counting — this measures that choice.
fn bench_prefix_vs_hash_tree(c: &mut Criterion) {
    use demon_itemsets::{HashTree, PrefixTree};
    let mut store = TxStore::new(1000);
    let block = quest_block("100K.20L.1I.4pats.4plen", 9, BlockId(1), 1);
    store.add_block(block);
    let model =
        FrequentItemsets::mine_from(&store, &[BlockId(1)], MinSupport::new(0.01).unwrap())
            .unwrap();
    let mut cands: Vec<ItemSet> = model
        .border()
        .keys()
        .filter(|s| s.len() >= 2)
        .take(200)
        .cloned()
        .collect();
    cands.sort();
    let block = store.block(BlockId(1)).unwrap();
    let block = &*block;

    let mut group = c.benchmark_group("candidate_structures");
    group.bench_function("prefix_tree_scan", |b| {
        b.iter(|| {
            let mut t = PrefixTree::build(black_box(&cands));
            t.count_block(black_box(block));
            t.into_counts()
        })
    });
    group.bench_function("hash_tree_scan", |b| {
        b.iter(|| {
            let mut t = HashTree::build(black_box(&cands));
            t.count_block(black_box(block));
            t.into_counts()
        })
    });
    group.finish();
}

fn bench_counters(c: &mut Criterion) {
    let mut store = TxStore::new(1000);
    let block = quest_block("250K.20L.1I.4pats.4plen", 3, BlockId(1), 1);
    store.add_block(block);
    let ids = [BlockId(1)];
    let model =
        FrequentItemsets::mine_from(&store, &ids, MinSupport::new(0.01).unwrap()).unwrap();
    let pairs = model.frequent_pairs_by_support();
    store.materialize_pairs(BlockId(1), &pairs, None);
    let mut border: Vec<ItemSet> = model.border().keys().cloned().collect();
    border.sort();
    let cands: Vec<ItemSet> = border.into_iter().take(20).collect();

    let mut group = c.benchmark_group("count_supports");
    for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| count_supports(k, black_box(&store), &ids, black_box(&cands)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_intersection,
    bench_prefix_vs_hash_tree,
    bench_counters
);
criterion_main!(benches);
