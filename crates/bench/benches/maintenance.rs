//! Criterion benchmarks of BORDERS model maintenance (the machinery
//! behind Figures 4–7): absorbing a new block with each update-phase
//! counter, plus batch mining as the from-scratch baseline.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use demon_bench::{quest_block, quest_block_sized};
use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon_types::{BlockId, MinSupport};
use std::hint::black_box;

fn setup() -> (TxStore, FrequentItemsets) {
    let minsup = MinSupport::new(0.009).unwrap();
    let mut store = TxStore::new(1000);
    let first = quest_block("1M.20L.1I.4pats.4plen", 5, BlockId(1), 1);
    let first_len = first.len() as u64;
    store.add_block(first);
    let model = FrequentItemsets::mine_from(&store, &[BlockId(1)], minsup).unwrap();
    let pairs = model.frequent_pairs_by_support();
    store.materialize_pairs(BlockId(1), &pairs, None);
    let second = quest_block_sized("1M.20L.1I.8pats.4plen", 1500, 6, BlockId(2), first_len + 1);
    store.add_block(second);
    store.materialize_pairs(BlockId(2), &pairs, None);
    (store, model)
}

fn bench_absorb(c: &mut Criterion) {
    let (store, model) = setup();
    let mut group = c.benchmark_group("absorb_block");
    group.sample_size(10);
    for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter_batched(
                || model.clone(),
                |mut m| {
                    m.absorb_block(black_box(&store), BlockId(2), k).unwrap();
                    m
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_batch_mine(c: &mut Criterion) {
    let (store, _) = setup();
    let minsup = MinSupport::new(0.009).unwrap();
    let mut group = c.benchmark_group("mine_from_scratch");
    group.sample_size(10);
    group.bench_function("apriori_both_blocks", |b| {
        b.iter(|| {
            FrequentItemsets::mine_from(
                black_box(&store),
                &[BlockId(1), BlockId(2)],
                minsup,
            )
            .unwrap()
        })
    });
    group.finish();
}

/// One GEMM step (window of 4, all-ones BSS): register + response-time
/// update + off-line updates, sequential vs parallel.
fn bench_gemm_step(c: &mut Criterion) {
    use demon_core::bss::BlockSelector;
    use demon_core::{Gemm, ItemsetMaintainer};
    let minsup = MinSupport::new(0.01).unwrap();
    let blocks: Vec<demon_types::TxBlock> = {
        let mut tid = 1u64;
        (1..=5u64)
            .map(|id| {
                let b = quest_block_sized("1M.20L.1I.4pats.4plen", 800, id, BlockId(id), tid);
                tid += b.len() as u64;
                b
            })
            .collect()
    };
    let mut group = c.benchmark_group("gemm_step");
    group.sample_size(10);
    for parallel in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if parallel { "parallel" } else { "sequential" }),
            &parallel,
            |b, &par| {
                b.iter_batched(
                    || {
                        let maintainer = ItemsetMaintainer::new(1000, minsup, CounterKind::Ecut);
                        let mut gemm = Gemm::new(maintainer, 4, BlockSelector::all())
                            .unwrap()
                            .with_parallel_offline(par);
                        for blk in blocks.iter().take(4).cloned() {
                            gemm.add_block(blk).unwrap();
                        }
                        gemm
                    },
                    |mut gemm| {
                        gemm.add_block(blocks[4].clone()).unwrap();
                        gemm
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_absorb, bench_batch_mine, bench_gemm_step);
criterion_main!(benches);
