//! Criterion benchmarks of the auxiliary machinery: association-rule
//! derivation from a maintained model, TID-list codec throughput, and the
//! incremental-DBSCAN insert/delete asymmetry of §3.2.4.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use demon_bench::quest_block;
use demon_clustering::dbscan::IncrementalDbscan;
use demon_itemsets::codec;
use demon_itemsets::rules::derive_rules;
use demon_itemsets::{FrequentItemsets, TxStore};
use demon_types::{BlockId, MinSupport, Point, Tid};
use std::hint::black_box;

fn bench_rules(c: &mut Criterion) {
    let mut store = TxStore::new(1000);
    store.add_block(quest_block("500K.20L.1I.4pats.4plen", 13, BlockId(1), 1));
    let model =
        FrequentItemsets::mine_from(&store, &[BlockId(1)], MinSupport::new(0.008).unwrap())
            .unwrap();
    c.bench_function("rules/derive_from_model", |b| {
        b.iter(|| derive_rules(black_box(&model), 0.3).len())
    });
}

fn bench_codec(c: &mut Criterion) {
    let dense: Vec<Tid> = (1..=50_000u64).map(Tid).collect();
    let sparse: Vec<Tid> = (1..=5_000u64).map(|i| Tid(i * 1000)).collect();
    c.bench_function("codec/encode_dense_50k", |b| {
        b.iter(|| codec::encode(black_box(&dense)))
    });
    let enc = codec::encode(&dense);
    c.bench_function("codec/decode_dense_50k", |b| {
        b.iter(|| codec::decode(black_box(&enc)))
    });
    let (ea, eb) = (codec::encode(&dense), codec::encode(&sparse));
    c.bench_function("codec/intersect_encoded", |b| {
        b.iter(|| codec::intersect_encoded(black_box(&ea), black_box(&eb)))
    });
}

/// The §3.2.4 asymmetry: inserting into a DBSCAN clustering is local;
/// deleting a bridge point forces re-clustering the affected cluster.
fn bench_dbscan_asymmetry(c: &mut Criterion) {
    use rand::prelude::*;
    let build = || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = IncrementalDbscan::new(2, 1.0, 4);
        // Two dense lobes connected through a single bridge point.
        for _ in 0..500 {
            d.insert(Point::new(vec![
                rng.gen_range(-3.0..0.0),
                rng.gen_range(-1.5..1.5),
            ]));
            d.insert(Point::new(vec![
                rng.gen_range(1.6..4.6),
                rng.gen_range(-1.5..1.5),
            ]));
        }
        let (bridge, _) = d.insert(Point::new(vec![0.8, 0.0]));
        (d, bridge)
    };
    let mut group = c.benchmark_group("incremental_dbscan");
    group.sample_size(10);
    group.bench_function("insert_interior_point", |b| {
        b.iter_batched(
            || build().0,
            |mut d| d.insert(Point::new(vec![-1.5, 0.0])),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("delete_bridge_point", |b| {
        b.iter_batched(
            &build,
            |(mut d, bridge)| d.remove(bridge),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_rules, bench_codec, bench_dbscan_asymmetry);
criterion_main!(benches);
