//! Criterion benchmarks of the clustering stack (the machinery behind
//! Figure 8): CF-tree insertion throughput, phase 2, and BIRCH+ vs full
//! BIRCH on a block refresh.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use demon_clustering::{Birch, BirchParams, BirchPlus, CfTree};
use demon_datagen::{ClusterDataGen, ClusterParams};
use demon_types::{BlockId, Point, PointBlock};
use std::hint::black_box;

fn params() -> BirchParams {
    let mut p = BirchParams::new(5, 50);
    p.tree.threshold2 = 4.0;
    p.tree.max_leaf_entries = 2048;
    p
}

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut gen = ClusterDataGen::new(
        ClusterParams {
            n_points: n,
            k: 50,
            dim: 5,
            noise_fraction: 0.02,
            sigma: 1.0,
            domain: 100.0,
        },
        seed,
    );
    gen.take_points(n)
}

fn bench_cftree_insert(c: &mut Criterion) {
    let pts = points(10_000, 1);
    c.bench_function("cftree/insert_10k_points", |b| {
        b.iter_batched(
            || CfTree::new(params().tree),
            |mut tree| {
                for p in &pts {
                    tree.insert_point(black_box(p));
                }
                tree
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_refresh(c: &mut Criterion) {
    let base = PointBlock::new(BlockId(1), points(20_000, 2));
    let new_block = PointBlock::new(BlockId(2), points(4_000, 3));
    let mut warm = BirchPlus::new(params());
    warm.absorb_block(&base);

    let mut group = c.benchmark_group("model_refresh");
    group.sample_size(10);
    group.bench_function("birch_full_rerun", |b| {
        b.iter(|| Birch::new(params()).cluster_blocks(black_box(&[&base, &new_block])))
    });
    group.bench_function("birch_plus", |b| {
        b.iter_batched(
            || warm.clone(),
            |mut plus| {
                plus.absorb_block(black_box(&new_block));
                plus.model()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_cftree_insert, bench_refresh);
criterion_main!(benches);
