//! Pattern detection over the **most recent window** (paper footnote 9:
//! "this algorithm can be extended easily to apply to the most recent
//! window option").
//!
//! The windowed miner keeps at most `w` live blocks. When a block slides
//! out, its raw data and deviation-matrix row are released and it is
//! removed from every maintained sequence; because the live blocks form a
//! contiguous suffix, the truncated sequences remain compact (pairwise
//! similarity is inherited, and every potential hole between surviving
//! members is itself live).

use crate::similarity::SimilarityOracle;
use demon_types::{Block, BlockId, BlockInterval, Transaction};
use std::time::Instant;

pub use crate::compact::CompactStats;

struct Slot<R> {
    id: BlockId,
    interval: Option<BlockInterval>,
    /// `None` once the block slid out of the window.
    data: Option<Block<R>>,
}

/// The most-recent-window compact-sequence miner.
pub struct WindowedCompactMiner<O, R = Transaction>
where
    O: SimilarityOracle<R>,
{
    oracle: O,
    w: usize,
    slots: Vec<Slot<R>>,
    /// Index of the first live slot.
    live_from: usize,
    /// `sim[i]` holds similarities of block `i` to blocks `j < i`
    /// (cleared when block `i` retires).
    sim: Vec<Vec<bool>>,
    sequences: Vec<Vec<usize>>,
}

impl<O, R> WindowedCompactMiner<O, R>
where
    O: SimilarityOracle<R>,
{
    /// A miner keeping the `w` most recent blocks (`w ≥ 2`).
    pub fn new(oracle: O, w: usize) -> Self {
        assert!(w >= 2, "a window below 2 blocks cannot hold a pattern");
        WindowedCompactMiner {
            oracle,
            w,
            slots: Vec::new(),
            live_from: 0,
            sim: Vec::new(),
            sequences: Vec::new(),
        }
    }

    /// Blocks absorbed so far (including retired ones).
    pub fn n_blocks(&self) -> usize {
        self.slots.len()
    }

    /// Live (in-window) block count.
    pub fn n_live(&self) -> usize {
        self.slots.len() - self.live_from
    }

    fn is_similar(&self, i: usize, j: usize) -> bool {
        if i == j {
            return true;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.sim[hi].get(lo).copied().unwrap_or(false)
    }

    /// Absorbs the next block, sliding the window when full.
    pub fn add_block(&mut self, block: Block<R>) -> CompactStats {
        let t0 = Instant::now();
        let mut stats = CompactStats::default();
        let t = self.slots.len();

        // Compare against the live blocks only.
        let mut sim_row = vec![false; t];
        #[allow(clippy::needless_range_loop)]
        for i in self.live_from..t {
            let earlier = self.slots[i].data.as_ref().expect("live block has data");
            let (similar, _) = self.oracle.similar(earlier, &block);
            stats.pairs_evaluated += 1;
            stats.similar_pairs += usize::from(similar);
            sim_row[i] = similar;
        }
        self.sim.push(sim_row);
        self.slots.push(Slot {
            id: block.id(),
            interval: block.interval(),
            data: Some(block),
        });

        let n_seq = self.sequences.len();
        for s in 0..n_seq {
            if self.can_extend(&self.sequences[s], t) {
                self.sequences[s].push(t);
                stats.extended += 1;
            }
        }
        self.sequences.push(vec![t]);

        // Slide.
        while self.n_live() > self.w {
            self.retire_oldest();
        }
        stats.time = t0.elapsed();
        stats
    }

    fn can_extend(&self, seq: &[usize], t: usize) -> bool {
        if seq.is_empty() || !seq.iter().all(|&m| self.is_similar(m, t)) {
            return false;
        }
        let last = *seq.last().expect("non-empty");
        for hole in last + 1..t {
            if seq.iter().all(|&m| self.is_similar(m, hole)) {
                return false;
            }
        }
        true
    }

    fn retire_oldest(&mut self) {
        let idx = self.live_from;
        self.slots[idx].data = None;
        self.sim[idx] = Vec::new();
        self.live_from += 1;
        // Remove the retired member from every sequence; drop emptied
        // sequences and de-duplicate what remains.
        for seq in &mut self.sequences {
            seq.retain(|&m| m != idx);
        }
        self.sequences.retain(|s| !s.is_empty());
        self.sequences.sort();
        self.sequences.dedup();
    }

    /// The live sequences as block-id lists.
    pub fn sequences(&self) -> Vec<Vec<BlockId>> {
        self.sequences
            .iter()
            .map(|seq| seq.iter().map(|&i| self.slots[i].id).collect())
            .collect()
    }

    /// The intervals of a sequence (for calendar reporting); `None` when
    /// any member lacks an interval.
    pub fn sequence_intervals(&self, seq: &[BlockId]) -> Option<Vec<BlockInterval>> {
        seq.iter()
            .map(|id| {
                self.slots
                    .iter()
                    .find(|s| s.id == *id)
                    .and_then(|s| s.interval)
            })
            .collect()
    }

    /// Definition 4.1 invariants over the live blocks. Test support.
    pub fn check_invariants(&self) {
        for seq in &self.sequences {
            for (ai, &a) in seq.iter().enumerate() {
                assert!(a >= self.live_from, "sequence holds retired block");
                for &b in &seq[ai + 1..] {
                    assert!(self.is_similar(a, b), "pairwise similarity violated");
                }
            }
            let (&first, &last) = (seq.first().unwrap(), seq.last().unwrap());
            for k in first..=last {
                if seq.contains(&k) {
                    continue;
                }
                let eligible = seq
                    .iter()
                    .take_while(|&&m| m < k)
                    .all(|&m| self.is_similar(m, k));
                assert!(!eligible, "hole {k} in {seq:?}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Item, Tid, Transaction, TxBlock};

    /// Scripted oracle: similar iff block ids are congruent mod `m`.
    struct ModOracle(u64);
    impl SimilarityOracle for ModOracle {
        fn similar(&mut self, a: &TxBlock, b: &TxBlock) -> (bool, f64) {
            let sim = a.id().value() % self.0 == b.id().value() % self.0;
            (sim, if sim { 0.0 } else { 1.0 })
        }
    }

    fn blk(id: u64) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            vec![Transaction::new(Tid(id), vec![Item(id as u32)])],
        )
    }

    fn ids(v: &[u64]) -> Vec<BlockId> {
        v.iter().copied().map(BlockId).collect()
    }

    #[test]
    fn window_bounds_live_blocks() {
        let mut miner = WindowedCompactMiner::new(ModOracle(2), 4);
        for id in 1..=10 {
            miner.add_block(blk(id));
            assert!(miner.n_live() <= 4);
            miner.check_invariants();
        }
        assert_eq!(miner.n_blocks(), 10);
        assert_eq!(miner.n_live(), 4);
    }

    #[test]
    fn sequences_cover_only_the_window() {
        let mut miner = WindowedCompactMiner::new(ModOracle(2), 4);
        for id in 1..=8 {
            miner.add_block(blk(id));
        }
        // Window = blocks 5..8; parity classes {5,7} and {6,8}.
        let seqs = miner.sequences();
        assert!(seqs.contains(&ids(&[5, 7])), "{seqs:?}");
        assert!(seqs.contains(&ids(&[6, 8])), "{seqs:?}");
        for s in &seqs {
            for b in s {
                assert!(b.value() >= 5, "retired block {b} still reported");
            }
        }
    }

    #[test]
    fn truncated_sequences_stay_compact() {
        // All blocks similar: the single growing run gets truncated to the
        // window at every slide.
        let mut miner = WindowedCompactMiner::new(ModOracle(1), 3);
        for id in 1..=7 {
            miner.add_block(blk(id));
            miner.check_invariants();
        }
        let seqs = miner.sequences();
        assert!(seqs.contains(&ids(&[5, 6, 7])), "{seqs:?}");
    }

    #[test]
    fn retired_blocks_are_not_compared() {
        let mut miner = WindowedCompactMiner::new(ModOracle(1), 2);
        for id in 1..=6 {
            let stats = miner.add_block(blk(id));
            // Only the live blocks (≤ w) are compared.
            assert!(stats.pairs_evaluated <= 2);
        }
    }

    #[test]
    fn intervals_resolve_for_live_sequences() {
        use demon_types::{BlockInterval, Timestamp};
        let mut miner = WindowedCompactMiner::new(ModOracle(1), 3);
        for id in 1..=3u64 {
            let iv = BlockInterval::new(Timestamp(id * 100), Timestamp(id * 100 + 50));
            let block = TxBlock::with_interval(BlockId(id), iv, vec![]);
            miner.add_block(block);
        }
        let seqs = miner.sequences();
        let longest = seqs.iter().max_by_key(|s| s.len()).unwrap();
        let ivs = miner.sequence_intervals(longest).unwrap();
        assert_eq!(ivs.len(), longest.len());
    }

    #[test]
    #[should_panic(expected = "window below 2")]
    fn rejects_tiny_window() {
        let _ = WindowedCompactMiner::new(ModOracle(1), 1);
    }
}
