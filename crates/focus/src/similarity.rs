//! The binary block-similarity predicate of Definition 4.1, with model
//! caching.
//!
//! "In practice this similarity function is used with a binary range"
//! (§4): two blocks are similar when the deviation between them is
//! statistically insignificant. The oracle below caches each block's
//! frequent-itemset model — a block is mined exactly once no matter how
//! many pairs it participates in — and can judge significance either by a
//! fixed deviation threshold (fast; the default for the large trace
//! experiments) or by the full bootstrap.

use crate::deviation::itemset_deviation;
use crate::significance::{bootstrap_significance, bootstrap_significance_with};
use demon_itemsets::FrequentItemsets;
use demon_types::parallel::{self, par_map};
use demon_types::{Block, BlockId, MinSupport, Transaction, TxBlock};
use std::collections::HashMap;

/// How significance is judged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimilarityConfig {
    /// Similar iff `δ < alpha` — the deviation itself is used as the
    /// significance proxy (cheap, deterministic; Definition 4.1's
    /// `δ_M(D₁,D₂) < α` reading).
    Threshold {
        /// Similarity level α in `(0, 1)`.
        alpha: f64,
    },
    /// Similar iff the bootstrap significance stays below `max_significance`.
    Bootstrap {
        /// Resamples per pair.
        n_resamples: usize,
        /// Blocks are similar when the fraction of null resamples below
        /// the observed deviation is at most this.
        max_significance: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// A pluggable pairwise block-similarity oracle over blocks of records
/// of type `R` (transactions by default; points for cluster models).
pub trait SimilarityOracle<R = Transaction> {
    /// Judges a pair, returning `(is_similar, deviation)`.
    fn similar(&mut self, a: &Block<R>, b: &Block<R>) -> (bool, f64);

    /// Judges `new` against every block of `earlier`, returning the
    /// verdicts in `earlier` order — the hot loop of the compact-sequence
    /// miner's `add_block` (one call per arriving block, `t` pairs).
    ///
    /// The default evaluates pairs sequentially via
    /// [`SimilarityOracle::similar`]; implementations may parallelize as
    /// long as the returned vector is bit-identical to the sequential
    /// one.
    fn similar_to_many(&mut self, earlier: &[Block<R>], new: &Block<R>) -> Vec<(bool, f64)> {
        earlier.iter().map(|e| self.similar(e, new)).collect()
    }
}

/// The frequent-itemset instantiation of the oracle.
pub struct ItemsetSimilarity {
    n_items: u32,
    minsup: MinSupport,
    config: SimilarityConfig,
    models: HashMap<BlockId, FrequentItemsets>,
}

impl ItemsetSimilarity {
    /// A new oracle over an `n_items` universe at threshold `minsup`.
    pub fn new(n_items: u32, minsup: MinSupport, config: SimilarityConfig) -> Self {
        ItemsetSimilarity {
            n_items,
            minsup,
            config,
            models: HashMap::new(),
        }
    }

    /// The cached model of a block, mining it on first use.
    pub fn model(&mut self, block: &TxBlock) -> &FrequentItemsets {
        self.models.entry(block.id()).or_insert_with(|| {
            FrequentItemsets::mine_blocks(&[block], self.n_items, self.minsup)
        })
    }

    /// Number of models currently cached.
    pub fn cached_models(&self) -> usize {
        self.models.len()
    }

    /// Evicts the cached model of a retired block.
    pub fn evict(&mut self, id: BlockId) {
        self.models.remove(&id);
    }
}

impl SimilarityOracle for ItemsetSimilarity {
    fn similar(&mut self, a: &TxBlock, b: &TxBlock) -> (bool, f64) {
        // Ensure both models are cached, then read them back immutably.
        self.model(a);
        self.model(b);
        let ma = &self.models[&a.id()];
        let mb = &self.models[&b.id()];
        match self.config {
            SimilarityConfig::Threshold { alpha } => {
                let d = itemset_deviation(a, ma, b, mb).deviation;
                (d < alpha, d)
            }
            SimilarityConfig::Bootstrap {
                n_resamples,
                max_significance,
                seed,
            } => {
                // Derive a pair-specific sub-seed for reproducibility.
                let pair_seed = seed ^ (a.id().value().wrapping_mul(0x9E3779B97F4A7C15))
                    ^ b.id().value();
                let (d, sig) = bootstrap_significance(
                    a,
                    b,
                    self.n_items,
                    self.minsup,
                    n_resamples,
                    pair_seed,
                );
                (sig <= max_significance, d)
            }
        }
    }

    /// Parallel batch evaluation: uncached models (including `new`'s) are
    /// mined concurrently and cached in block order, then the `t`
    /// pairwise deviations are computed concurrently with [`par_map`] at
    /// the process-wide default [`parallel::global`]. Order-preserving
    /// sharding keeps the verdicts bit-identical to the sequential loop
    /// at any thread count; under the bootstrap config each pair's
    /// resamples are seeded from the pair ids, so they too are
    /// layout-independent.
    fn similar_to_many(&mut self, earlier: &[TxBlock], new: &TxBlock) -> Vec<(bool, f64)> {
        let par = parallel::global();
        let mut to_mine: Vec<&TxBlock> = Vec::new();
        for b in earlier.iter().chain(std::iter::once(new)) {
            if !self.models.contains_key(&b.id()) && to_mine.iter().all(|m| m.id() != b.id()) {
                to_mine.push(b);
            }
        }
        let (n_items, minsup) = (self.n_items, self.minsup);
        let mined = par_map(par, &to_mine, |b| {
            FrequentItemsets::mine_blocks(&[*b], n_items, minsup)
        });
        for (b, m) in to_mine.iter().zip(mined) {
            self.models.insert(b.id(), m);
        }

        let models = &self.models;
        let mb = &models[&new.id()];
        match self.config {
            SimilarityConfig::Threshold { alpha } => par_map(par, earlier, |a| {
                let d = itemset_deviation(a, &models[&a.id()], new, mb).deviation;
                (d < alpha, d)
            }),
            SimilarityConfig::Bootstrap {
                n_resamples,
                max_significance,
                seed,
            } => par_map(par, earlier, |a| {
                let pair_seed = seed ^ (a.id().value().wrapping_mul(0x9E3779B97F4A7C15))
                    ^ new.id().value();
                let (d, sig) = bootstrap_significance_with(
                    a,
                    new,
                    n_items,
                    minsup,
                    n_resamples,
                    pair_seed,
                    par,
                );
                (sig <= max_significance, d)
            }),
        }
    }
}

/// The cluster-model instantiation of the oracle: each block is clustered
/// once with BIRCH (model cached), and similarity is a threshold on the
/// cluster deviation.
pub struct ClusterSimilarity {
    params: demon_clustering::BirchParams,
    alpha: f64,
    models: HashMap<BlockId, demon_clustering::BirchModel>,
}

impl ClusterSimilarity {
    /// An oracle clustering blocks with `params`, similar iff `δ < alpha`.
    pub fn new(params: demon_clustering::BirchParams, alpha: f64) -> Self {
        ClusterSimilarity {
            params,
            alpha,
            models: HashMap::new(),
        }
    }

    fn model(&mut self, block: &demon_types::PointBlock) -> &demon_clustering::BirchModel {
        self.models.entry(block.id()).or_insert_with(|| {
            let (model, _) =
                demon_clustering::Birch::new(self.params).cluster_points(block.records());
            model
        })
    }

    /// Number of models currently cached.
    pub fn cached_models(&self) -> usize {
        self.models.len()
    }
}

impl SimilarityOracle<demon_types::Point> for ClusterSimilarity {
    fn similar(
        &mut self,
        a: &demon_types::PointBlock,
        b: &demon_types::PointBlock,
    ) -> (bool, f64) {
        self.model(a);
        self.model(b);
        let ma = &self.models[&a.id()];
        let mb = &self.models[&b.id()];
        let d = crate::deviation::cluster_deviation(a, ma, b, mb).deviation;
        (d < self.alpha, d)
    }
}

/// The density-model instantiation of the oracle: each block is clustered
/// once with (insert-only) incremental DBSCAN, and similarity is a
/// threshold on the core-reachability deviation of
/// [`crate::deviation::dbscan_deviation`] — sensitive to cluster *shape*,
/// not just centroid mass.
pub struct DbscanSimilarity {
    params: demon_clustering::DbscanParams,
    alpha: f64,
    models: HashMap<BlockId, demon_clustering::IncrementalDbscan>,
}

impl DbscanSimilarity {
    /// An oracle clustering blocks with `params`, similar iff `δ < alpha`.
    pub fn new(params: demon_clustering::DbscanParams, alpha: f64) -> Self {
        DbscanSimilarity {
            params,
            alpha,
            models: HashMap::new(),
        }
    }

    fn model(&mut self, block: &demon_types::PointBlock) -> &demon_clustering::IncrementalDbscan {
        self.models.entry(block.id()).or_insert_with(|| {
            let mut m = demon_clustering::IncrementalDbscan::with_params(self.params);
            for p in block.records() {
                m.insert(p.clone());
            }
            m
        })
    }

    /// Number of models currently cached.
    pub fn cached_models(&self) -> usize {
        self.models.len()
    }
}

impl SimilarityOracle<demon_types::Point> for DbscanSimilarity {
    fn similar(
        &mut self,
        a: &demon_types::PointBlock,
        b: &demon_types::PointBlock,
    ) -> (bool, f64) {
        self.model(a);
        self.model(b);
        let ma = &self.models[&a.id()];
        let mb = &self.models[&b.id()];
        let d = crate::deviation::dbscan_deviation(a, ma, b, mb).deviation;
        (d < self.alpha, d)
    }
}

/// The decision-tree instantiation of the oracle: each labeled block is
/// fitted once (model cached); similarity thresholds the class-aware tree
/// deviation. Completes the three FOCUS model classes of §4 as usable
/// similarity oracles.
pub struct TreeSimilarity {
    params: demon_trees::TreeParams,
    dim: usize,
    alpha: f64,
    models: HashMap<BlockId, demon_trees::DecisionTree>,
}

impl TreeSimilarity {
    /// An oracle fitting `dim`-dimensional labeled blocks with `params`,
    /// similar iff `δ < alpha`.
    pub fn new(dim: usize, params: demon_trees::TreeParams, alpha: f64) -> Self {
        TreeSimilarity {
            params,
            dim,
            alpha,
            models: HashMap::new(),
        }
    }

    fn model(&mut self, block: &Block<demon_trees::LabeledPoint>) -> &demon_trees::DecisionTree {
        self.models.entry(block.id()).or_insert_with(|| {
            demon_trees::DecisionTree::fit(block.records(), self.dim, self.params)
        })
    }

    /// Number of models currently cached.
    pub fn cached_models(&self) -> usize {
        self.models.len()
    }
}

impl SimilarityOracle<demon_trees::LabeledPoint> for TreeSimilarity {
    fn similar(
        &mut self,
        a: &Block<demon_trees::LabeledPoint>,
        b: &Block<demon_trees::LabeledPoint>,
    ) -> (bool, f64) {
        self.model(a);
        self.model(b);
        let ma = &self.models[&a.id()];
        let mb = &self.models[&b.id()];
        let d = crate::deviation::tree_deviation(a, ma, b, mb).deviation;
        (d < self.alpha, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Item, Tid, Transaction};

    fn block(id: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(id * 10_000 + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    fn k(v: f64) -> MinSupport {
        MinSupport::new(v).unwrap()
    }

    #[test]
    fn threshold_oracle_separates_blocks() {
        let mut oracle =
            ItemsetSimilarity::new(8, k(0.2), SimilarityConfig::Threshold { alpha: 0.3 });
        let a = block(1, &[&[0, 1], &[0, 1], &[2]]);
        let twin = block(2, &[&[0, 1], &[2], &[0, 1]]);
        let alien = block(3, &[&[5, 6], &[5, 6], &[7]]);
        let (sim, d) = oracle.similar(&a, &twin);
        assert!(sim, "twin blocks should be similar (δ={d})");
        let (sim, d) = oracle.similar(&a, &alien);
        assert!(!sim, "alien blocks should differ (δ={d})");
    }

    #[test]
    fn models_are_cached_once_per_block() {
        let mut oracle =
            ItemsetSimilarity::new(8, k(0.2), SimilarityConfig::Threshold { alpha: 0.3 });
        let a = block(1, &[&[0]]);
        let b = block(2, &[&[1]]);
        let c = block(3, &[&[0]]);
        oracle.similar(&a, &b);
        oracle.similar(&a, &c);
        oracle.similar(&b, &c);
        assert_eq!(oracle.cached_models(), 3);
        oracle.evict(BlockId(2));
        assert_eq!(oracle.cached_models(), 2);
    }

    #[test]
    fn bootstrap_oracle_judges_same_process_similar() {
        let mut oracle = ItemsetSimilarity::new(
            4,
            k(0.1),
            SimilarityConfig::Bootstrap {
                n_resamples: 20,
                max_significance: 0.95,
                seed: 5,
            },
        );
        let mk = |id: u64| {
            let txs: Vec<Vec<u32>> = (0..30)
                .map(|i| if i % 2 == 0 { vec![0, 1] } else { vec![2] })
                .collect();
            let slices: Vec<&[u32]> = txs.iter().map(|v| v.as_slice()).collect();
            block(id, &slices)
        };
        let (sim, _) = oracle.similar(&mk(1), &mk(2));
        assert!(sim);
    }

    #[test]
    fn cluster_oracle_groups_same_process_point_blocks() {
        use demon_clustering::BirchParams;
        use demon_types::{Point, PointBlock};
        use rand::prelude::*;
        let mk = |id: u64, center: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            PointBlock::new(
                BlockId(id),
                (0..150)
                    .map(|_| {
                        Point::new(vec![
                            center + rng.gen_range(-1.0..1.0),
                            rng.gen_range(-1.0..1.0),
                        ])
                    })
                    .collect(),
            )
        };
        let mut params = BirchParams::new(2, 2);
        params.tree.threshold2 = 1.0;
        let mut oracle = ClusterSimilarity::new(params, 0.4);
        let a = mk(1, 0.0, 1);
        let twin = mk(2, 0.0, 2);
        let far = mk(3, 50.0, 3);
        let (sim, d) = oracle.similar(&a, &twin);
        assert!(sim, "same-process point blocks should be similar (δ={d})");
        let (sim, d) = oracle.similar(&a, &far);
        assert!(!sim, "shifted point blocks should differ (δ={d})");
        assert_eq!(oracle.cached_models(), 3);
    }

    #[test]
    fn dbscan_oracle_separates_shape_changes() {
        use demon_clustering::DbscanParams;
        use demon_types::{Point, PointBlock};
        // A ring and a filled blob with the same centroid: only a
        // shape-aware oracle tells them apart.
        let ring = |id: u64, phase: f64| {
            PointBlock::new(
                BlockId(id),
                (0..48)
                    .map(|i| {
                        let t = (i as f64 + phase) / 48.0 * std::f64::consts::TAU;
                        Point::new(vec![5.0 * t.cos(), 5.0 * t.sin()])
                    })
                    .collect(),
            )
        };
        let blob = PointBlock::new(
            BlockId(3),
            (0..49)
                .map(|i| {
                    Point::new(vec![
                        (i % 7) as f64 * 0.5 - 1.5,
                        (i / 7) as f64 * 0.5 - 1.5,
                    ])
                })
                .collect(),
        );
        let mut oracle = DbscanSimilarity::new(DbscanParams::new(2, 1.0, 3), 0.4);
        let (sim, d) = oracle.similar(&ring(1, 0.0), &ring(2, 0.5));
        assert!(sim, "same-shape blocks should be similar (δ={d})");
        let (sim, d) = oracle.similar(&ring(1, 0.0), &blob);
        assert!(!sim, "ring vs blob should differ (δ={d})");
        assert_eq!(oracle.cached_models(), 3);
    }

    #[test]
    fn tree_oracle_separates_label_flips() {
        use demon_trees::{LabeledPoint, TreeParams};
        use rand::prelude::*;
        let mk = |id: u64, flip: bool, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            Block::new(
                BlockId(id),
                (0..150)
                    .map(|_| {
                        let left = rng.gen::<bool>();
                        let x = if left { -3.0 } else { 3.0 } + rng.gen_range(-0.5..0.5);
                        LabeledPoint::new(vec![x], u32::from(left == flip))
                    })
                    .collect(),
            )
        };
        let mut oracle = TreeSimilarity::new(1, TreeParams::new(2), 0.3);
        let a = mk(1, false, 1);
        let twin = mk(2, false, 2);
        let flipped = mk(3, true, 3);
        let (sim, d) = oracle.similar(&a, &twin);
        assert!(sim, "same concept should be similar (δ={d})");
        let (sim, d) = oracle.similar(&a, &flipped);
        assert!(!sim, "flipped labels should differ (δ={d})");
        assert_eq!(oracle.cached_models(), 3);
    }

    #[test]
    fn compact_mining_over_point_blocks() {
        // The generic miner runs end-to-end on cluster models: regimes
        // alternate between two centers; blocks of the same regime chain.
        use demon_clustering::BirchParams;
        use demon_types::{Point, PointBlock};
        use rand::prelude::*;
        let mut params = BirchParams::new(1, 1);
        params.tree.threshold2 = 1.0;
        let oracle = ClusterSimilarity::new(params, 0.5);
        let mut miner = crate::compact::CompactSequenceMiner::new(oracle);
        let mut rng = StdRng::seed_from_u64(9);
        for id in 1..=6u64 {
            let center = if id % 2 == 1 { 0.0 } else { 40.0 };
            let block = PointBlock::new(
                BlockId(id),
                (0..100)
                    .map(|_| Point::new(vec![center + rng.gen_range(-1.0..1.0)]))
                    .collect(),
            );
            miner.add_block(block);
        }
        miner.check_invariants();
        let seqs = miner.maximal_sequences();
        let odd: Vec<BlockId> = [1u64, 3, 5].map(BlockId).to_vec();
        let even: Vec<BlockId> = [2u64, 4, 6].map(BlockId).to_vec();
        assert!(seqs.contains(&odd), "{seqs:?}");
        assert!(seqs.contains(&even), "{seqs:?}");
    }

    #[test]
    fn bootstrap_oracle_flags_different_processes() {
        let mut oracle = ItemsetSimilarity::new(
            8,
            k(0.1),
            SimilarityConfig::Bootstrap {
                n_resamples: 20,
                max_significance: 0.95,
                seed: 5,
            },
        );
        let a = block(1, &(0..30).map(|_| &[0u32, 1][..]).collect::<Vec<_>>());
        let b = block(2, &(0..30).map(|_| &[5u32, 6][..]).collect::<Vec<_>>());
        let (sim, d) = oracle.similar(&a, &b);
        assert!(!sim, "δ={d}");
    }
}
