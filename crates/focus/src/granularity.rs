//! Automatic block-granularity selection — the paper's stated future
//! work ("explore the impact of the block granularity on the types of
//! patterns discovered, and … automatically determine appropriate levels
//! of granularity").
//!
//! The heuristic scores each candidate granularity by how well its blocks
//! organize into patterns: the fraction of blocks covered by a
//! long-enough maximal compact sequence (**coverage**) times the mean
//! relative length of those sequences (**cohesion**). Too-fine blocks are
//! noisy (low coverage); too-coarse blocks smear regimes together
//! (few, short sequences); the score peaks where the segmentation matches
//! the data's natural rhythm.

use crate::compact::CompactSequenceMiner;
use crate::similarity::SimilarityOracle;
use demon_types::TxBlock;
use std::collections::BTreeSet;

/// The evaluation of one candidate granularity.
#[derive(Clone, Debug, PartialEq)]
pub struct GranularityReport {
    /// The candidate granularity, in the caller's unit (typically hours).
    pub granularity: u64,
    /// Number of blocks the stream segmented into.
    pub n_blocks: usize,
    /// Maximal sequences of length ≥ the configured minimum.
    pub n_patterns: usize,
    /// Fraction of blocks belonging to at least one such sequence.
    pub coverage: f64,
    /// Mean sequence length divided by the block count.
    pub cohesion: f64,
    /// `coverage × cohesion` — the selection criterion.
    pub score: f64,
}

/// Evaluates each granularity: `blocks_at(g)` segments the stream,
/// `oracle_at()` builds a fresh similarity oracle, and sequences shorter
/// than `min_len` are ignored. Returns one report per granularity, in
/// input order.
pub fn evaluate_granularities<F, G, O>(
    granularities: &[u64],
    mut blocks_at: F,
    mut oracle_at: G,
    min_len: usize,
) -> Vec<GranularityReport>
where
    F: FnMut(u64) -> Vec<TxBlock>,
    G: FnMut() -> O,
    O: SimilarityOracle,
{
    assert!(min_len >= 2, "patterns need at least two blocks");
    granularities
        .iter()
        .map(|&g| {
            let blocks = blocks_at(g);
            let n_blocks = blocks.len();
            let mut miner = CompactSequenceMiner::new(oracle_at());
            for b in blocks {
                miner.add_block(b);
            }
            let qualifying: Vec<Vec<demon_types::BlockId>> = miner
                .maximal_sequences()
                .into_iter()
                .filter(|s| s.len() >= min_len)
                .collect();
            let covered: BTreeSet<u64> = qualifying
                .iter()
                .flatten()
                .map(|id| id.value())
                .collect();
            let coverage = if n_blocks == 0 {
                0.0
            } else {
                covered.len() as f64 / n_blocks as f64
            };
            let cohesion = if qualifying.is_empty() || n_blocks == 0 {
                0.0
            } else {
                let mean_len: f64 = qualifying.iter().map(|s| s.len() as f64).sum::<f64>()
                    / qualifying.len() as f64;
                mean_len / n_blocks as f64
            };
            GranularityReport {
                granularity: g,
                n_blocks,
                n_patterns: qualifying.len(),
                coverage,
                cohesion,
                score: coverage * cohesion,
            }
        })
        .collect()
}

/// The granularity with the highest score (ties: the coarser one, which
/// is cheaper to maintain).
pub fn select_granularity(reports: &[GranularityReport]) -> Option<&GranularityReport> {
    reports.iter().max_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then(a.granularity.cmp(&b.granularity))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityOracle;
    use demon_types::{BlockId, Item, Tid, Transaction};

    /// Blocks are similar iff they carry the same item.
    struct ItemOracle;
    impl SimilarityOracle for ItemOracle {
        fn similar(&mut self, a: &TxBlock, b: &TxBlock) -> (bool, f64) {
            let ia = a.records().first().map(|t| t.items()[0]);
            let ib = b.records().first().map(|t| t.items()[0]);
            let sim = ia == ib;
            (sim, if sim { 0.0 } else { 1.0 })
        }
    }

    /// A stream with a period-2 regime signal, segmentable at unit or
    /// double granularity. Unit granularity: blocks alternate A,B,A,B…
    /// (two clean patterns). Double granularity: every block mixes A+B
    /// (modeled as a third symbol C → all similar, one coarse pattern).
    fn blocks_at(g: u64) -> Vec<TxBlock> {
        let n = 12 / g as usize;
        (1..=n as u64)
            .map(|i| {
                let symbol = if g == 1 { (i % 2) as u32 } else { 2u32 };
                TxBlock::new(
                    BlockId(i),
                    vec![Transaction::new(Tid(i), vec![Item(symbol)])],
                )
            })
            .collect()
    }

    #[test]
    fn reports_cover_each_granularity() {
        let reports = evaluate_granularities(&[1, 2], blocks_at, || ItemOracle, 3);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].granularity, 1);
        assert_eq!(reports[0].n_blocks, 12);
        assert_eq!(reports[1].n_blocks, 6);
    }

    #[test]
    fn fine_granularity_with_clean_alternation_scores_by_coverage() {
        let reports = evaluate_granularities(&[1, 2], blocks_at, || ItemOracle, 3);
        // g=1: two alternating patterns of 6 blocks each → full coverage,
        // cohesion 6/12. g=2: one pattern of 6 blocks → full coverage,
        // cohesion 6/6 = 1 → the coarse segmentation wins (it compresses
        // the same structure into fewer blocks).
        assert!((reports[0].coverage - 1.0).abs() < 1e-12);
        assert!((reports[1].coverage - 1.0).abs() < 1e-12);
        assert!(reports[1].score > reports[0].score);
        let best = select_granularity(&reports).unwrap();
        assert_eq!(best.granularity, 2);
    }

    #[test]
    fn noise_lowers_coverage() {
        // All blocks dissimilar: no qualifying pattern at all.
        struct NeverOracle;
        impl SimilarityOracle for NeverOracle {
            fn similar(&mut self, _: &TxBlock, _: &TxBlock) -> (bool, f64) {
                (false, 1.0)
            }
        }
        let reports = evaluate_granularities(&[1], blocks_at, || NeverOracle, 3);
        assert_eq!(reports[0].n_patterns, 0);
        assert_eq!(reports[0].score, 0.0);
    }

    #[test]
    fn empty_input_is_handled() {
        let reports = evaluate_granularities(&[1], |_| Vec::new(), || ItemOracle, 2);
        assert_eq!(reports[0].n_blocks, 0);
        assert_eq!(reports[0].score, 0.0);
        assert!(select_granularity(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two blocks")]
    fn rejects_min_len_one() {
        evaluate_granularities(&[1], blocks_at, || ItemOracle, 1);
    }
}
