//! The FOCUS deviation measure, instantiated for frequent-itemset models
//! and for cluster models.
//!
//! FOCUS describes a model by a *structural component* (interesting
//! regions) and a *measure component* (how much of the data falls in each
//! region). The deviation between two datasets is computed by extending
//! both models to their **greatest common refinement** and aggregating the
//! per-region measure differences. For frequent itemsets the regions are
//! the itemsets of either model and the measures are support fractions;
//! for clusters the regions are cluster balls and the measures membership
//! fractions.
//!
//! The normalized deviation is
//! `δ = Σ_r |m₁(r) − m₂(r)| / Σ_r (m₁(r) + m₂(r))  ∈ [0, 1]`.

use demon_clustering::{BirchModel, IncrementalDbscan, Label};
use demon_itemsets::prefix_tree::PrefixTree;
use demon_itemsets::FrequentItemsets;
use demon_trees::{DecisionTree, LabeledPoint};
use demon_types::{Block, ItemSet, Point, PointBlock, TxBlock};

/// The outcome of a deviation computation, including the cost evidence
/// behind Figure 10: how many regions had to be counted by scanning.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviationResult {
    /// The normalized deviation in `[0, 1]`.
    pub deviation: f64,
    /// Regions of the common refinement.
    pub regions: usize,
    /// Regions whose measure on the first dataset required a scan.
    pub counted_on_a: usize,
    /// Regions whose measure on the second dataset required a scan.
    pub counted_on_b: usize,
}

/// Deviation between two transaction blocks through their frequent-itemset
/// models.
///
/// `ma`/`mb` must be models of `a`/`b` (same κ). Measures already tracked
/// by a model (in `L ∪ NB⁻`) are reused; itemsets frequent in one block
/// but untracked in the other are counted with one prefix-tree scan of the
/// other block. When the blocks are similar their borders usually cover
/// each other's frequent sets and no scan happens at all — the "scanned
/// only rarely" observation of §5.3.
pub fn itemset_deviation(
    a: &TxBlock,
    ma: &FrequentItemsets,
    b: &TxBlock,
    mb: &FrequentItemsets,
) -> DeviationResult {
    // Regions: union of the two frequent-itemset sets.
    let mut regions: Vec<&ItemSet> = ma.frequent().keys().collect();
    for set in mb.frequent().keys() {
        if !ma.frequent().contains_key(set) {
            regions.push(set);
        }
    }

    // Find regions whose support is unknown on the opposite dataset.
    let unknown_a: Vec<ItemSet> = regions
        .iter()
        .filter(|s| ma.support(s).is_none())
        .map(|s| (*s).clone())
        .collect();
    let unknown_b: Vec<ItemSet> = regions
        .iter()
        .filter(|s| mb.support(s).is_none())
        .map(|s| (*s).clone())
        .collect();
    let extra_a = scan_counts(&unknown_a, a);
    let extra_b = scan_counts(&unknown_b, b);

    let frac = |model: &FrequentItemsets,
                extra: &[(ItemSet, u64)],
                n: u64,
                set: &ItemSet|
     -> f64 {
        let count = model.support(set).unwrap_or_else(|| {
            extra
                .iter()
                .find(|(s, _)| s == set)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        });
        if n == 0 {
            0.0
        } else {
            count as f64 / n as f64
        }
    };

    let (na, nb) = (a.len() as u64, b.len() as u64);
    let mut diff = 0.0;
    let mut total = 0.0;
    for set in &regions {
        let sa = frac(ma, &extra_a, na, set);
        let sb = frac(mb, &extra_b, nb, set);
        diff += (sa - sb).abs();
        total += sa + sb;
    }
    DeviationResult {
        deviation: if total > 0.0 { diff / total } else { 0.0 },
        regions: regions.len(),
        counted_on_a: unknown_a.len(),
        counted_on_b: unknown_b.len(),
    }
}

fn scan_counts(unknown: &[ItemSet], block: &TxBlock) -> Vec<(ItemSet, u64)> {
    if unknown.is_empty() {
        return Vec::new();
    }
    let mut tree = PrefixTree::build(unknown);
    tree.count_block(block);
    unknown
        .iter()
        .cloned()
        .zip(tree.into_counts())
        .collect()
}

/// Deviation between two point blocks through their cluster models.
///
/// Each cluster of either model contributes a region: the ball around its
/// centroid with radius `2·R` (twice the average member distance — wide
/// enough to capture the cluster's mass, narrow enough to exclude other
/// clusters in separated data). The measure of a dataset over a region is
/// the fraction of its points inside the ball, obtained with one scan of
/// each block.
pub fn cluster_deviation(
    a: &PointBlock,
    ma: &BirchModel,
    b: &PointBlock,
    mb: &BirchModel,
) -> DeviationResult {
    let mut regions: Vec<(Point, f64)> = Vec::with_capacity(ma.k() + mb.k());
    for model in [ma, mb] {
        for c in &model.clusters {
            let r2 = c.cf.radius2();
            let radius = 2.0 * r2.sqrt();
            regions.push((c.centroid(), (radius * radius).max(1e-12)));
        }
    }
    let measure = |block: &PointBlock, center: &Point, radius2: f64| -> f64 {
        if block.is_empty() {
            return 0.0;
        }
        let inside = block
            .records()
            .iter()
            .filter(|p| p.dist2(center) <= radius2)
            .count();
        inside as f64 / block.len() as f64
    };
    let mut diff = 0.0;
    let mut total = 0.0;
    for (center, radius2) in &regions {
        let sa = measure(a, center, *radius2);
        let sb = measure(b, center, *radius2);
        diff += (sa - sb).abs();
        total += sa + sb;
    }
    DeviationResult {
        deviation: if total > 0.0 { diff / total } else { 0.0 },
        regions: regions.len(),
        counted_on_a: regions.len(),
        counted_on_b: regions.len(),
    }
}

/// Deviation between two point blocks through their density (DBSCAN)
/// models — the fourth FOCUS instantiation.
///
/// Density clusters are not convex, so centroid balls (the BIRCH regions
/// of [`cluster_deviation`]) would misrepresent shapes like moons or
/// rings. Instead each cluster of either model contributes its
/// **core-reachable region**: the union of ε-balls around the cluster's
/// core points. The measure of a dataset over a region is the fraction of
/// its points within ε of some core point of that cluster — exactly the
/// set of points DBSCAN would place in (or on the border of) the cluster,
/// answered with the model's own grid index in one scan per block.
pub fn dbscan_deviation(
    a: &PointBlock,
    da: &IncrementalDbscan,
    b: &PointBlock,
    db: &IncrementalDbscan,
) -> DeviationResult {
    // A cluster is identified by its resolved union-find root; collect the
    // live cluster roots of one model, sorted for determinism.
    let roots = |m: &IncrementalDbscan| -> Vec<usize> {
        let mut out: Vec<usize> = (0..m.n_slots())
            .filter(|&i| m.is_alive(i) && m.is_core(i))
            .filter_map(|i| match m.label(i) {
                Label::Cluster(root) => Some(root),
                Label::Noise => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    // For each point, the set of clusters of `m` whose core-reachable
    // region contains it — one grid-index neighborhood query per point.
    let measure = |block: &PointBlock, m: &IncrementalDbscan, root: usize| -> f64 {
        if block.is_empty() {
            return 0.0;
        }
        let inside = block
            .records()
            .iter()
            .filter(|p| {
                m.neighbors_of(p)
                    .into_iter()
                    .any(|i| m.is_core(i) && m.label(i) == Label::Cluster(root))
            })
            .count();
        inside as f64 / block.len() as f64
    };

    let mut diff = 0.0;
    let mut total = 0.0;
    let mut regions = 0;
    for (m, rs) in [(da, roots(da)), (db, roots(db))] {
        for root in rs {
            let sa = measure(a, m, root);
            let sb = measure(b, m, root);
            diff += (sa - sb).abs();
            total += sa + sb;
            regions += 1;
        }
    }
    DeviationResult {
        deviation: if total > 0.0 { diff / total } else { 0.0 },
        regions,
        counted_on_a: regions,
        counted_on_b: regions,
    }
}

/// Deviation between two labeled-point blocks through their decision-tree
/// models — the third FOCUS instantiation of §4.
///
/// The greatest common refinement overlays the two trees' leaf
/// partitions; since each tree's leaves partition the space, it suffices
/// to take every leaf region of *either* tree and measure, per class, the
/// fraction of each dataset falling inside (one scan per block, as FOCUS
/// promises). Class structure matters: two datasets occupying the same
/// regions with swapped labels deviate maximally.
pub fn tree_deviation(
    a: &Block<LabeledPoint>,
    ma: &DecisionTree,
    b: &Block<LabeledPoint>,
    mb: &DecisionTree,
) -> DeviationResult {
    let n_classes = ma.params().n_classes.max(mb.params().n_classes) as usize;
    let regions: Vec<demon_trees::Region> = ma
        .regions()
        .into_iter()
        .chain(mb.regions())
        .collect();

    // One scan per block: per (region, class) counts.
    let measure = |block: &Block<LabeledPoint>| -> Vec<Vec<u64>> {
        let mut counts = vec![vec![0u64; n_classes]; regions.len()];
        for rec in block.records() {
            for (ri, region) in regions.iter().enumerate() {
                if region.contains(&rec.point) {
                    counts[ri][rec.label as usize] += 1;
                }
            }
        }
        counts
    };
    let ca = measure(a);
    let cb = measure(b);
    let (na, nb) = (a.len() as f64, b.len() as f64);

    let mut diff = 0.0;
    let mut total = 0.0;
    for ri in 0..regions.len() {
        for class in 0..n_classes {
            let sa = if na > 0.0 { ca[ri][class] as f64 / na } else { 0.0 };
            let sb = if nb > 0.0 { cb[ri][class] as f64 / nb } else { 0.0 };
            diff += (sa - sb).abs();
            total += sa + sb;
        }
    }
    DeviationResult {
        deviation: if total > 0.0 { diff / total } else { 0.0 },
        regions: regions.len() * n_classes,
        counted_on_a: regions.len(),
        counted_on_b: regions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_clustering::{Birch, BirchParams};
    use demon_types::{BlockId, Item, MinSupport, Tid, Transaction};

    fn block(id: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(id * 10_000 + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    fn model(b: &TxBlock) -> FrequentItemsets {
        FrequentItemsets::mine_blocks(&[b], 8, MinSupport::new(0.2).unwrap())
    }

    #[test]
    fn identical_blocks_have_zero_deviation() {
        let a = block(1, &[&[0, 1], &[0, 1], &[2], &[0, 2]]);
        let b = block(2, &[&[0, 1], &[0, 1], &[2], &[0, 2]]);
        let r = itemset_deviation(&a, &model(&a), &b, &model(&b));
        assert_eq!(r.deviation, 0.0);
        assert!(r.regions > 0);
        // Identical models: nothing unknown, nothing scanned.
        assert_eq!(r.counted_on_a, 0);
        assert_eq!(r.counted_on_b, 0);
    }

    #[test]
    fn disjoint_blocks_have_maximal_deviation() {
        let a = block(1, &[&[0, 1], &[0, 1], &[0]]);
        let b = block(2, &[&[4, 5], &[4, 5], &[5]]);
        let r = itemset_deviation(&a, &model(&a), &b, &model(&b));
        assert!(r.deviation > 0.99, "deviation {}", r.deviation);
    }

    #[test]
    fn deviation_is_symmetric() {
        let a = block(1, &[&[0, 1], &[2], &[0, 2], &[1]]);
        let b = block(2, &[&[0, 1], &[0, 1], &[3], &[1, 3]]);
        let (ma, mb) = (model(&a), model(&b));
        let ab = itemset_deviation(&a, &ma, &b, &mb);
        let ba = itemset_deviation(&b, &mb, &a, &ma);
        assert!((ab.deviation - ba.deviation).abs() < 1e-12);
    }

    #[test]
    fn similar_blocks_score_below_dissimilar() {
        let a = block(1, &[&[0, 1], &[0, 1], &[0, 2], &[2]]);
        let near = block(2, &[&[0, 1], &[0, 2], &[0, 1], &[2, 0]]);
        let far = block(3, &[&[5, 6], &[5, 6], &[6, 7], &[7]]);
        let (ma, mn, mf) = (model(&a), model(&near), model(&far));
        let d_near = itemset_deviation(&a, &ma, &near, &mn).deviation;
        let d_far = itemset_deviation(&a, &ma, &far, &mf).deviation;
        assert!(d_near < d_far, "near {d_near} vs far {d_far}");
    }

    #[test]
    fn dissimilar_blocks_require_scans() {
        // Itemsets frequent only in `far` are untracked by `a`'s model, so
        // their supports on `a` must be counted by scanning — the Fig-10
        // spike mechanism.
        let a = block(1, &[&[0, 1], &[0, 1], &[0]]);
        let far = block(2, &[&[4, 5], &[4, 5], &[5]]);
        let r = itemset_deviation(&a, &model(&a), &far, &model(&far));
        assert!(r.counted_on_a > 0);
    }

    #[test]
    fn empty_blocks_deviate_zero() {
        let a = block(1, &[]);
        let b = block(2, &[]);
        let r = itemset_deviation(&a, &model(&a), &b, &model(&b));
        assert_eq!(r.deviation, 0.0);
        assert_eq!(r.regions, 0);
    }

    fn points_around(center: &[f64], n: usize, spread: f64, seed: u64) -> Vec<Point> {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    center
                        .iter()
                        .map(|c| c + rng.gen_range(-spread..spread))
                        .collect(),
                )
            })
            .collect()
    }

    fn labeled_block(id: u64, flip: bool, seed: u64) -> Block<LabeledPoint> {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<LabeledPoint> = (0..200)
            .map(|_| {
                let left = rng.gen::<bool>();
                let x = if left {
                    rng.gen_range(-5.0..-1.0)
                } else {
                    rng.gen_range(1.0..5.0)
                };
                let label = u32::from(left == flip);
                LabeledPoint::new(vec![x, rng.gen_range(-1.0..1.0)], label)
            })
            .collect();
        Block::new(BlockId(id), records)
    }

    #[test]
    fn tree_deviation_zero_for_same_process() {
        use demon_trees::TreeParams;
        let a = labeled_block(1, false, 1);
        let b = labeled_block(2, false, 2);
        let ma = DecisionTree::fit(a.records(), 2, TreeParams::new(2));
        let mb = DecisionTree::fit(b.records(), 2, TreeParams::new(2));
        let r = tree_deviation(&a, &ma, &b, &mb);
        assert!(r.deviation < 0.1, "same-process deviation {}", r.deviation);
    }

    #[test]
    fn tree_deviation_detects_label_flip() {
        // Identical feature distribution, swapped labels: feature-only
        // measures would see nothing; the class-aware measure maxes out.
        use demon_trees::TreeParams;
        let a = labeled_block(1, false, 3);
        let b = labeled_block(2, true, 4);
        let ma = DecisionTree::fit(a.records(), 2, TreeParams::new(2));
        let mb = DecisionTree::fit(b.records(), 2, TreeParams::new(2));
        let r = tree_deviation(&a, &ma, &b, &mb);
        assert!(r.deviation > 0.9, "label-flip deviation {}", r.deviation);
    }

    #[test]
    fn cluster_deviation_separates_shifted_data() {
        let params = BirchParams::new(2, 2);
        let mk = |pts: Vec<Point>, id: u64| {
            let block = PointBlock::new(BlockId(id), pts);
            let (m, _) = Birch::new(params).cluster_points(block.records());
            (block, m)
        };
        let mut near_pts = points_around(&[0.0, 0.0], 100, 1.0, 1);
        near_pts.extend(points_around(&[20.0, 0.0], 100, 1.0, 2));
        let (a, ma) = mk(near_pts, 1);
        let mut same_pts = points_around(&[0.0, 0.0], 100, 1.0, 3);
        same_pts.extend(points_around(&[20.0, 0.0], 100, 1.0, 4));
        let (b, mb) = mk(same_pts, 2);
        let mut far_pts = points_around(&[100.0, 100.0], 100, 1.0, 5);
        far_pts.extend(points_around(&[140.0, 100.0], 100, 1.0, 6));
        let (c, mc) = mk(far_pts, 3);

        let d_same = cluster_deviation(&a, &ma, &b, &mb).deviation;
        let d_diff = cluster_deviation(&a, &ma, &c, &mc).deviation;
        assert!(d_same < 0.3, "same-process deviation {d_same}");
        assert!(d_diff > 0.9, "shifted deviation {d_diff}");
    }

    /// Points on a circle of radius `r` around `(cx, cy)`, with small
    /// deterministic radial jitter.
    fn ring_points(cx: f64, cy: f64, r: f64, n: usize, seed: u64) -> Vec<Point> {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                let rr = r + rng.gen_range(-0.1..0.1);
                Point::new(vec![cx + rr * t.cos(), cy + rr * t.sin()])
            })
            .collect()
    }

    #[test]
    fn dbscan_deviation_separates_shapes_with_equal_centroids() {
        // A ring and a central blob share centroid and bounding box —
        // indistinguishable to centroid-ball regions — but their
        // core-reachable regions are disjoint, so the density deviation
        // maxes out while two same-process rings score near zero.
        use demon_clustering::{DbscanParams, IncrementalDbscan};
        let fit = |pts: &[Point]| {
            let mut m = IncrementalDbscan::with_params(DbscanParams::new(2, 1.0, 3));
            for p in pts {
                m.insert(p.clone());
            }
            m
        };
        let mk = |pts: Vec<Point>, id: u64| {
            let m = fit(&pts);
            (PointBlock::new(BlockId(id), pts), m)
        };
        let (a, da) = mk(ring_points(0.0, 0.0, 5.0, 60, 1), 1);
        let (b, db) = mk(ring_points(0.0, 0.0, 5.0, 60, 2), 2);
        let (c, dc) = mk(points_around(&[0.0, 0.0], 60, 1.5, 3), 3);

        assert_eq!(da.n_clusters(), 1, "ring should be one density cluster");
        assert_eq!(dc.n_clusters(), 1, "blob should be one density cluster");
        let r_same = dbscan_deviation(&a, &da, &b, &db);
        let r_diff = dbscan_deviation(&a, &da, &c, &dc);
        assert!(r_same.deviation < 0.2, "same-process deviation {}", r_same.deviation);
        assert!(r_diff.deviation > 0.9, "ring-vs-blob deviation {}", r_diff.deviation);
        assert_eq!(r_same.regions, 2);
        assert_eq!(r_same.counted_on_a, 2);
    }
}
