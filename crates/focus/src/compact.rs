//! Incremental mining of **compact sequences** of pairwise-similar blocks
//! (paper §4).
//!
//! A compact sequence is a maximal sequence of pairwise-similar blocks
//! with no "holes": any block lying between the first and last member that
//! is similar to every member before it must itself be a member. Unlike a
//! clustering of blocks, compact sequences may overlap — "blocks collected
//! every Monday" and "blocks collected on the first day of every month"
//! co-exist.
//!
//! The miner follows the paper's inductive algorithm: when block `D_{t+1}`
//! arrives, it is compared against every earlier block (the deviations are
//! cached in a growing half-matrix), every existing sequence is extended
//! with `D_{t+1}` if the extension is still compact, and the singleton
//! sequence `{D_{t+1}}` is added.

use crate::similarity::SimilarityOracle;
use demon_types::{Block, BlockId, Transaction};
use std::time::{Duration, Instant};

/// Cost evidence of one `add_block` step (Figure 10: per-block update
/// time, spiking when the new block differs from many earlier blocks).
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactStats {
    /// Wall-clock time of the whole step.
    pub time: Duration,
    /// Pairwise similarity evaluations performed (one per earlier block).
    pub pairs_evaluated: usize,
    /// How many of those pairs were similar.
    pub similar_pairs: usize,
    /// How many existing sequences were extended.
    pub extended: usize,
}

/// The incremental compact-sequence miner, generic over the record type
/// of the blocks (and therefore over the model class judging similarity).
pub struct CompactSequenceMiner<O, R = Transaction>
where
    O: SimilarityOracle<R>,
{
    oracle: O,
    blocks: Vec<Block<R>>,
    /// `sim[i][j]`, `j < i`: is block `j` similar to block `i`?
    sim: Vec<Vec<bool>>,
    /// Cached deviations, same shape as `sim`.
    dev: Vec<Vec<f64>>,
    /// Sequences as indices into `blocks`, ascending.
    sequences: Vec<Vec<usize>>,
}

impl<O, R> CompactSequenceMiner<O, R>
where
    O: SimilarityOracle<R>,
{
    /// A miner over the given similarity oracle.
    pub fn new(oracle: O) -> Self {
        CompactSequenceMiner {
            oracle,
            blocks: Vec::new(),
            sim: Vec::new(),
            dev: Vec::new(),
            sequences: Vec::new(),
        }
    }

    /// Number of blocks absorbed.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The cached deviation between the `i`-th and `j`-th absorbed blocks.
    pub fn deviation(&self, i: usize, j: usize) -> Option<f64> {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        if lo == hi {
            return Some(0.0);
        }
        self.dev.get(hi).and_then(|row| row.get(lo)).copied()
    }

    /// Whether blocks `i` and `j` were judged similar.
    pub fn is_similar(&self, i: usize, j: usize) -> bool {
        if i == j {
            return true;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.sim[hi][lo]
    }

    /// Absorbs the next block, updating the deviation matrix and the set
    /// of compact sequences.
    pub fn add_block(&mut self, block: Block<R>) -> CompactStats {
        let t0 = Instant::now();
        let mut stats = CompactStats::default();
        let t = self.blocks.len();

        // One batched oracle call for all `t` pairs: parallel oracles
        // (e.g. `ItemsetSimilarity`) evaluate them concurrently while
        // returning verdicts in arrival order.
        let verdicts = self.oracle.similar_to_many(&self.blocks, &block);
        let mut sim_row = Vec::with_capacity(t);
        let mut dev_row = Vec::with_capacity(t);
        for (similar, deviation) in verdicts {
            stats.pairs_evaluated += 1;
            stats.similar_pairs += usize::from(similar);
            sim_row.push(similar);
            dev_row.push(deviation);
        }
        self.sim.push(sim_row);
        self.dev.push(dev_row);
        self.blocks.push(block);

        // Try to extend every existing sequence with the new block.
        let n_seq = self.sequences.len();
        for s in 0..n_seq {
            if self.can_extend(&self.sequences[s], t) {
                self.sequences[s].push(t);
                stats.extended += 1;
            }
        }
        self.sequences.push(vec![t]);
        stats.time = t0.elapsed();
        stats
    }

    /// Compactness of `seq ∪ {t}` given `seq` is compact and `t` is past
    /// its end: `t` must be similar to every member, and every skipped
    /// block between the old end and `t` must be dissimilar to at least
    /// one member (otherwise it would be an eligible hole).
    fn can_extend(&self, seq: &[usize], t: usize) -> bool {
        if !seq.iter().all(|&m| self.is_similar(m, t)) {
            return false;
        }
        let last = *seq.last().expect("sequences are non-empty");
        for hole in last + 1..t {
            if seq.iter().all(|&m| self.is_similar(m, hole)) {
                return false;
            }
        }
        true
    }

    /// All maintained sequences as block-id lists (one sequence starts at
    /// every block, so subsets of longer sequences are included — exactly
    /// the paper's collection `G₁ … G_t`).
    pub fn sequences(&self) -> Vec<Vec<BlockId>> {
        self.sequences
            .iter()
            .map(|seq| seq.iter().map(|&i| self.blocks[i].id()).collect())
            .collect()
    }

    /// The maximal sequences: those not a subset of any other maintained
    /// sequence — the deliverable an analyst looks at.
    pub fn maximal_sequences(&self) -> Vec<Vec<BlockId>> {
        let seqs = &self.sequences;
        let mut maximal: Vec<Vec<BlockId>> = Vec::new();
        for (i, s) in seqs.iter().enumerate() {
            let subset_of_other = seqs.iter().enumerate().any(|(j, other)| {
                j != i
                    && other.len() >= s.len()
                    && (other.len() > s.len() || j < i)
                    && s.iter().all(|m| other.contains(m))
            });
            if !subset_of_other {
                maximal.push(s.iter().map(|&i| self.blocks[i].id()).collect());
            }
        }
        maximal
    }

    /// The blocks absorbed so far, in arrival order.
    pub fn blocks(&self) -> &[Block<R>] {
        &self.blocks
    }

    /// Consumes the miner, handing the oracle back (to inspect its caches).
    pub fn into_oracle(self) -> O {
        self.oracle
    }

    /// Checks the definition of compactness against the cached similarity
    /// matrix for every maintained sequence. Test support.
    pub fn check_invariants(&self) {
        for seq in &self.sequences {
            // (1) pairwise similarity.
            for (ai, &a) in seq.iter().enumerate() {
                for &b in &seq[ai + 1..] {
                    assert!(
                        self.is_similar(a, b),
                        "sequence {seq:?} violates pairwise similarity at ({a},{b})"
                    );
                }
            }
            // (2) no holes.
            let (&first, &last) = (seq.first().unwrap(), seq.last().unwrap());
            for k in first..=last {
                if seq.contains(&k) {
                    continue;
                }
                let eligible = seq
                    .iter()
                    .take_while(|&&m| m < k)
                    .all(|&m| self.is_similar(m, k));
                assert!(!eligible, "sequence {seq:?} has hole {k}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Item, Tid, Transaction, TxBlock};

    /// A scripted oracle driven by an explicit similarity matrix, keyed by
    /// block id — lets tests replay the paper's worked example exactly.
    struct Scripted {
        similar_pairs: Vec<(u64, u64)>,
    }

    impl SimilarityOracle for Scripted {
        fn similar(&mut self, a: &TxBlock, b: &TxBlock) -> (bool, f64) {
            let (x, y) = (a.id().value(), b.id().value());
            let hit = self
                .similar_pairs
                .iter()
                .any(|&(p, q)| (p, q) == (x, y) || (p, q) == (y, x));
            (hit, if hit { 0.0 } else { 1.0 })
        }
    }

    fn blk(id: u64) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            vec![Transaction::new(Tid(id), vec![Item(id as u32)])],
        )
    }

    fn ids(v: &[u64]) -> Vec<BlockId> {
        v.iter().copied().map(BlockId).collect()
    }

    #[test]
    fn paper_example_sequences() {
        // Paper §4: blocks D1..D4, similar pairs (1,2),(1,3),(1,4),(2,4).
        // {D1,D2,D4} is compact; {D1,D2,D3} violates pairwise similarity;
        // {D1,D4} violates the no-hole condition (D2 is eligible).
        let oracle = Scripted {
            similar_pairs: vec![(1, 2), (1, 3), (1, 4), (2, 4)],
        };
        let mut miner = CompactSequenceMiner::new(oracle);
        for id in 1..=4 {
            miner.add_block(blk(id));
        }
        miner.check_invariants();
        let seqs = miner.sequences();
        assert!(seqs.contains(&ids(&[1, 2, 4])), "sequences: {seqs:?}");
        assert!(!seqs.contains(&ids(&[1, 2, 3])));
        assert!(!seqs.contains(&ids(&[1, 4])));
        // One sequence starts at each block.
        assert_eq!(seqs.len(), 4);
    }

    #[test]
    fn holes_block_extension() {
        // D1 ~ D3, and D2 ~ D1 as well: D2 is an eligible hole, so {D1}
        // cannot stretch to {D1, D3} — but {D1, D2, D3} needs D2 ~ D3 too.
        let oracle = Scripted {
            similar_pairs: vec![(1, 2), (1, 3)],
        };
        let mut miner = CompactSequenceMiner::new(oracle);
        for id in 1..=3 {
            miner.add_block(blk(id));
        }
        miner.check_invariants();
        let seqs = miner.sequences();
        assert!(seqs.contains(&ids(&[1, 2])));
        assert!(!seqs.contains(&ids(&[1, 3])));
        assert!(!seqs.contains(&ids(&[1, 2, 3])));
    }

    #[test]
    fn dissimilar_intermediate_allows_skip() {
        // D2 dissimilar to D1; D3 similar to D1 → {D1, D3} is compact.
        let oracle = Scripted {
            similar_pairs: vec![(1, 3)],
        };
        let mut miner = CompactSequenceMiner::new(oracle);
        for id in 1..=3 {
            miner.add_block(blk(id));
        }
        miner.check_invariants();
        assert!(miner.sequences().contains(&ids(&[1, 3])));
    }

    #[test]
    fn overlapping_sequences_coexist() {
        // {1,2} and {2,3} overlap at block 2 — a partitioning clustering
        // could not represent both (the paper's motivation for compact
        // sequences over block clustering).
        let oracle = Scripted {
            similar_pairs: vec![(1, 2), (2, 3)],
        };
        let mut miner = CompactSequenceMiner::new(oracle);
        for id in 1..=3 {
            miner.add_block(blk(id));
        }
        miner.check_invariants();
        let seqs = miner.maximal_sequences();
        assert!(seqs.contains(&ids(&[1, 2])), "{seqs:?}");
        assert!(seqs.contains(&ids(&[2, 3])), "{seqs:?}");
    }

    #[test]
    fn all_similar_yields_one_run() {
        let oracle = Scripted {
            similar_pairs: (1..=5u64)
                .flat_map(|a| (a + 1..=5).map(move |b| (a, b)))
                .collect(),
        };
        let mut miner = CompactSequenceMiner::new(oracle);
        for id in 1..=5 {
            miner.add_block(blk(id));
        }
        miner.check_invariants();
        let maximal = miner.maximal_sequences();
        assert_eq!(maximal, vec![ids(&[1, 2, 3, 4, 5])]);
    }

    #[test]
    fn maximal_filters_prefixes() {
        let oracle = Scripted {
            similar_pairs: vec![(1, 2), (1, 3), (2, 3)],
        };
        let mut miner = CompactSequenceMiner::new(oracle);
        for id in 1..=3 {
            miner.add_block(blk(id));
        }
        let maximal = miner.maximal_sequences();
        assert_eq!(maximal, vec![ids(&[1, 2, 3])]);
    }

    #[test]
    fn stats_count_pairs_and_extensions() {
        let oracle = Scripted {
            similar_pairs: vec![(1, 2)],
        };
        let mut miner = CompactSequenceMiner::new(oracle);
        let s1 = miner.add_block(blk(1));
        assert_eq!(s1.pairs_evaluated, 0);
        let s2 = miner.add_block(blk(2));
        assert_eq!(s2.pairs_evaluated, 1);
        assert_eq!(s2.similar_pairs, 1);
        assert_eq!(s2.extended, 1);
        let s3 = miner.add_block(blk(3));
        assert_eq!(s3.pairs_evaluated, 2);
        assert_eq!(s3.similar_pairs, 0);
        assert_eq!(s3.extended, 0);
    }

    #[test]
    fn deviation_matrix_is_symmetric_and_cached() {
        let oracle = Scripted {
            similar_pairs: vec![(1, 2)],
        };
        let mut miner = CompactSequenceMiner::new(oracle);
        miner.add_block(blk(1));
        miner.add_block(blk(2));
        miner.add_block(blk(3));
        assert_eq!(miner.deviation(0, 1), Some(0.0));
        assert_eq!(miner.deviation(1, 0), Some(0.0));
        assert_eq!(miner.deviation(0, 2), Some(1.0));
        assert_eq!(miner.deviation(1, 1), Some(0.0));
        assert!(miner.is_similar(0, 1));
        assert!(!miner.is_similar(2, 0));
    }
}
