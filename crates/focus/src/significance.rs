//! Bootstrap estimation of the statistical significance of a deviation.
//!
//! The significance of `δ(D₁, D₂)` is the probability that a deviation at
//! least as large would arise if both blocks were drawn from the same
//! underlying process. We estimate it with the classic permutation
//! bootstrap: pool the transactions, repeatedly re-split the pool into two
//! pseudo-blocks of the original sizes, and record where the observed
//! deviation falls in the null distribution.
//!
//! A significance near 1 means the observed deviation is extreme under
//! the null — the blocks are genuinely *different* (the paper reports
//! "statistical significance of the deviation values as high as 99%" for
//! the anomalous Monday block).
//!
//! # Parallelism
//!
//! Resamples are independent, so [`bootstrap_significance_with`] shards
//! them across threads. Each resample `i` draws its permutation from a
//! dedicated RNG seeded from `(seed, i)` — not from a thread-local RNG
//! stream — so resample `i` is the same permutation no matter which
//! shard computes it, and the estimate is bit-identical at any thread
//! count.

use crate::deviation::itemset_deviation;
use demon_itemsets::FrequentItemsets;
use demon_types::parallel::{self, par_ranges};
use demon_types::{obs, BlockId, MinSupport, Parallelism, Transaction, TxBlock};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Estimates the significance of the deviation between blocks `a` and `b`
/// through frequent-itemset models at threshold `minsup`, using the
/// process-wide default [`Parallelism`].
///
/// Returns `(observed_deviation, significance)` where significance is the
/// fraction of `n_resamples` null re-splits whose deviation is strictly
/// below the observed one.
pub fn bootstrap_significance(
    a: &TxBlock,
    b: &TxBlock,
    n_items: u32,
    minsup: MinSupport,
    n_resamples: usize,
    seed: u64,
) -> (f64, f64) {
    bootstrap_significance_with(a, b, n_items, minsup, n_resamples, seed, parallel::global())
}

/// [`bootstrap_significance`] with an explicit [`Parallelism`]. The
/// result is bit-identical at any thread count (see the module docs).
pub fn bootstrap_significance_with(
    a: &TxBlock,
    b: &TxBlock,
    n_items: u32,
    minsup: MinSupport,
    n_resamples: usize,
    seed: u64,
    par: Parallelism,
) -> (f64, f64) {
    let ma = FrequentItemsets::mine_blocks(&[a], n_items, minsup);
    let mb = FrequentItemsets::mine_blocks(&[b], n_items, minsup);
    let observed = itemset_deviation(a, &ma, b, &mb).deviation;
    if n_resamples == 0 {
        return (observed, if observed > 0.0 { 1.0 } else { 0.0 });
    }

    let base_pool: Vec<&Transaction> = a.records().iter().chain(b.records()).collect();
    let na = a.len();
    obs::add(obs::Counter::BootstrapResamples, n_resamples as u64);
    let below: usize = par_ranges(par, n_resamples, |range| {
        let mut pool = base_pool.clone();
        let mut below = 0usize;
        for i in range {
            // Reset the pool and seed the RNG from the global resample
            // index: resample `i` is the same permutation of the same
            // ordering regardless of which shard computes it.
            pool.copy_from_slice(&base_pool);
            let mut rng = StdRng::seed_from_u64(resample_seed(seed, i as u64));
            pool.shuffle(&mut rng);
            let half_a =
                TxBlock::new(BlockId(1), pool[..na].iter().map(|t| (*t).clone()).collect());
            let half_b =
                TxBlock::new(BlockId(2), pool[na..].iter().map(|t| (*t).clone()).collect());
            let ha = FrequentItemsets::mine_blocks(&[&half_a], n_items, minsup);
            let hb = FrequentItemsets::mine_blocks(&[&half_b], n_items, minsup);
            let d = itemset_deviation(&half_a, &ha, &half_b, &hb).deviation;
            if d < observed {
                below += 1;
            }
        }
        below
    })
    .into_iter()
    .sum();
    (observed, below as f64 / n_resamples as f64)
}

/// Mixes the user seed with a resample index (SplitMix64 finalizer) so
/// consecutive indices give well-separated RNG states.
fn resample_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Item, Tid};

    fn block(id: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(id * 10_000 + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    fn repeated(pattern: &[&[u32]], times: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for _ in 0..times {
            for p in pattern {
                out.push(p.to_vec());
            }
        }
        out
    }

    #[test]
    fn same_process_blocks_are_insignificant() {
        let raw_a = repeated(&[&[0, 1], &[0], &[1, 2]], 20);
        let raw_b = repeated(&[&[0, 1], &[1, 2], &[0]], 20);
        let a = block(1, &raw_a.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let b = block(2, &raw_b.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let (obs, sig) =
            bootstrap_significance(&a, &b, 4, MinSupport::new(0.1).unwrap(), 30, 7);
        assert!(obs < 0.05, "observed {obs}");
        assert!(sig < 0.5, "significance {sig}");
    }

    #[test]
    fn different_process_blocks_are_significant() {
        let raw_a = repeated(&[&[0, 1], &[0], &[0, 1]], 20);
        let raw_b = repeated(&[&[4, 5], &[5], &[4, 5]], 20);
        let a = block(1, &raw_a.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let b = block(2, &raw_b.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let (obs, sig) =
            bootstrap_significance(&a, &b, 8, MinSupport::new(0.1).unwrap(), 30, 7);
        assert!(obs > 0.9, "observed {obs}");
        assert!(sig > 0.95, "significance {sig}");
    }

    #[test]
    fn zero_resamples_degrades_to_threshold_check() {
        let a = block(1, &[&[0], &[0]]);
        let b = block(2, &[&[1], &[1]]);
        let (obs, sig) =
            bootstrap_significance(&a, &b, 2, MinSupport::new(0.1).unwrap(), 0, 0);
        assert!(obs > 0.0);
        assert_eq!(sig, 1.0);
    }

    #[test]
    fn bootstrap_is_thread_count_invariant() {
        let raw_a = repeated(&[&[0, 1], &[0], &[1, 2]], 8);
        let raw_b = repeated(&[&[0, 1], &[1, 2], &[0]], 8);
        let a = block(1, &raw_a.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let b = block(2, &raw_b.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let minsup = MinSupport::new(0.1).unwrap();
        let serial = bootstrap_significance_with(
            &a,
            &b,
            4,
            minsup,
            12,
            99,
            demon_types::Parallelism::serial(),
        );
        for t in [2usize, 3, 8] {
            let par = bootstrap_significance_with(
                &a,
                &b,
                4,
                minsup,
                12,
                99,
                demon_types::Parallelism::new(t),
            );
            assert_eq!(serial, par, "thread count {t}");
        }
    }

    #[test]
    fn bootstrap_is_deterministic_in_seed() {
        let raw = repeated(&[&[0, 1], &[2]], 10);
        let a = block(1, &raw.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let b = block(2, &raw.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let r1 = bootstrap_significance(&a, &b, 3, MinSupport::new(0.1).unwrap(), 10, 3);
        let r2 = bootstrap_significance(&a, &b, 3, MinSupport::new(0.1).unwrap(), 10, 3);
        assert_eq!(r1, r2);
    }
}
