//! The FOCUS deviation framework and DEMON's pattern detection.
//!
//! DEMON §4 uses the FOCUS framework (Ganti et al., PODS '99) as a
//! black-box **block similarity oracle**: the deviation between two blocks
//! quantifies how differently their data is distributed, as seen through a
//! class of data mining models. Blocks are *similar* when the deviation is
//! statistically insignificant.
//!
//! * [`deviation`] — the deviation instantiated for frequent-itemset
//!   models (regions = union of the two models' frequent itemsets,
//!   measures = support fractions) and for cluster models (regions =
//!   cluster balls, measures = membership fractions). Supports already
//!   tracked in a model are reused; only regions unknown to the *other*
//!   model force a scan — which is why computing the deviation between
//!   similar blocks is cheap and between dissimilar blocks is expensive
//!   (the spikes of Figure 10);
//! * [`significance`] — bootstrap estimation of the statistical
//!   significance of an observed deviation under the pooled null;
//! * [`similarity`] — the binary block-similarity predicate of
//!   Definition 4.1, with model caching;
//! * [`compact`] — the incremental **compact sequence** miner of §4.
//!
//! # Paper → module map
//!
//! | Paper section | Concept | Module / type |
//! |---|---|---|
//! | §4 (FOCUS) | deviation through a model class | [`deviation`] |
//! | §4 | bootstrap significance of a deviation | [`significance`] |
//! | Def. 4.1 | binary block-similarity predicate | [`similarity`] |
//! | §4 | compact sequences `G₁ … G_t` | [`compact`] |
//! | §4 | windowed pattern detection | [`windowed`] |
//! | §5 | block-granularity selection | [`granularity`] |
//! | §5 | cyclic sub-sequence reporting | [`postprocess`] |
//!
//! Bootstrap resamples and the miner's per-arrival pairwise deviations
//! shard across threads via `demon_types::parallel`; resample `i` is
//! seeded from `(seed, i)`, so scores are bit-identical at any thread
//! count ([`bootstrap_significance_with`],
//! [`similarity::SimilarityOracle::similar_to_many`]).
//!
//! # Example
//!
//! Mine compact sequences over an alternating block stream:
//!
//! ```
//! use demon_focus::{CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig};
//! use demon_types::{Block, BlockId, Item, MinSupport, Tid, Transaction};
//!
//! let oracle = ItemsetSimilarity::new(
//!     4,
//!     MinSupport::new(0.2).unwrap(),
//!     SimilarityConfig::Threshold { alpha: 0.3 },
//! );
//! let mut miner = CompactSequenceMiner::new(oracle);
//! for id in 1..=6u64 {
//!     let item = Item((id % 2) as u32);      // blocks alternate populations
//!     let txs = (0..20)
//!         .map(|i| Transaction::new(Tid(id * 100 + i), vec![item]))
//!         .collect();
//!     miner.add_block(Block::new(BlockId(id), txs));
//! }
//! let seqs = miner.maximal_sequences();
//! let odd: Vec<BlockId> = [1u64, 3, 5].map(BlockId).to_vec();
//! let even: Vec<BlockId> = [2u64, 4, 6].map(BlockId).to_vec();
//! assert!(seqs.contains(&odd) && seqs.contains(&even));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compact;
pub mod deviation;
pub mod granularity;
pub mod postprocess;
pub mod significance;
pub mod similarity;
pub mod windowed;

pub use compact::{CompactSequenceMiner, CompactStats};
pub use deviation::{
    cluster_deviation, dbscan_deviation, itemset_deviation, tree_deviation, DeviationResult,
};
pub use granularity::{evaluate_granularities, select_granularity, GranularityReport};
pub use postprocess::{cyclic_subsequences, CyclicSequence};
pub use significance::{bootstrap_significance, bootstrap_significance_with};
pub use similarity::{
    ClusterSimilarity, DbscanSimilarity, ItemsetSimilarity, SimilarityConfig, SimilarityOracle,
    TreeSimilarity,
};
pub use windowed::WindowedCompactMiner;
