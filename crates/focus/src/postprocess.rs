//! Post-processing of compact sequences (paper §4): "the set of compact
//! sequences may be analyzed further to discover specialized types of
//! patterns by placing additional constraints like cyclicity … if
//! ⟨D₁,D₃,D₄,D₅,D₇⟩ is a compact sequence, we can easily derive the
//! cyclic sequence ⟨D₁,D₃,D₅,D₇⟩".
//!
//! A **cyclic sequence** is an arithmetic subsequence of block ids:
//! members at a fixed period (every day, every 7th block, …). The
//! extractor below finds, for each period, the longest arithmetic
//! subsequences contained in a compact sequence.

use demon_types::BlockId;
use std::collections::BTreeSet;

/// A cyclic (arithmetic) subsequence: `start, start+period, …`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CyclicSequence {
    /// Member block ids, ascending, equally spaced.
    pub blocks: Vec<BlockId>,
    /// The id spacing between consecutive members.
    pub period: u64,
}

impl CyclicSequence {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the sequence is empty (never produced by the extractor).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Extracts all *maximal* cyclic subsequences of `sequence` with at least
/// `min_len` members (`min_len ≥ 3` — two points always form a trivial
/// arithmetic sequence).
///
/// Runs in `O(m²)` over the member count by extending each (start, period)
/// pair greedily; a subsequence is reported only if it is not a suffix of
/// a longer one with the same period.
pub fn cyclic_subsequences(sequence: &[BlockId], min_len: usize) -> Vec<CyclicSequence> {
    assert!(min_len >= 3, "min_len below 3 is degenerate");
    let ids: Vec<u64> = sequence.iter().map(|b| b.value()).collect();
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "sequence must ascend");
    let members: BTreeSet<u64> = ids.iter().copied().collect();
    let mut out: Vec<CyclicSequence> = Vec::new();
    let mut covered: BTreeSet<(u64, u64)> = BTreeSet::new(); // (start, period) already inside a reported run

    for i in 0..ids.len() {
        for j in i + 1..ids.len() {
            let period = ids[j] - ids[i];
            if covered.contains(&(ids[i], period)) {
                continue;
            }
            // Only start maximal runs: skip if ids[i]-period is a member.
            if members.contains(&(ids[i].wrapping_sub(period))) && ids[i] >= period {
                continue;
            }
            let mut run = vec![ids[i], ids[j]];
            let mut next = ids[j] + period;
            while members.contains(&next) {
                run.push(next);
                next += period;
            }
            if run.len() >= min_len {
                for &r in &run {
                    covered.insert((r, period));
                }
                out.push(CyclicSequence {
                    blocks: run.into_iter().map(BlockId).collect(),
                    period,
                });
            }
        }
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.period.cmp(&b.period)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<BlockId> {
        v.iter().copied().map(BlockId).collect()
    }

    #[test]
    fn paper_example_extracts_period_two_cycle() {
        // ⟨D1,D3,D4,D5,D7⟩ contains the cyclic ⟨D1,D3,D5,D7⟩.
        let cycles = cyclic_subsequences(&ids(&[1, 3, 4, 5, 7]), 3);
        let best = &cycles[0];
        assert_eq!(best.blocks, ids(&[1, 3, 5, 7]));
        assert_eq!(best.period, 2);
    }

    #[test]
    fn weekly_pattern_in_daily_blocks() {
        // Mondays among daily blocks: period 7.
        let seq = ids(&[2, 9, 10, 16, 23, 30]);
        let cycles = cyclic_subsequences(&seq, 3);
        assert!(cycles
            .iter()
            .any(|c| c.period == 7 && c.blocks == ids(&[2, 9, 16, 23, 30])));
    }

    #[test]
    fn contiguous_run_is_period_one() {
        let cycles = cyclic_subsequences(&ids(&[4, 5, 6, 7]), 3);
        assert_eq!(cycles[0].period, 1);
        assert_eq!(cycles[0].len(), 4);
    }

    #[test]
    fn runs_are_maximal_not_suffixes() {
        let cycles = cyclic_subsequences(&ids(&[1, 2, 3, 4, 5]), 3);
        let period1: Vec<&CyclicSequence> =
            cycles.iter().filter(|c| c.period == 1).collect();
        assert_eq!(period1.len(), 1, "only the maximal run, not its suffixes");
        assert_eq!(period1[0].len(), 5);
    }

    #[test]
    fn short_sequences_yield_nothing() {
        assert!(cyclic_subsequences(&ids(&[1, 5]), 3).is_empty());
        assert!(cyclic_subsequences(&ids(&[1, 4, 9]), 3).is_empty()); // gaps 3 and 5
    }

    #[test]
    fn sorted_longest_first() {
        let cycles = cyclic_subsequences(&ids(&[1, 2, 3, 4, 10, 20, 30]), 3);
        for w in cycles.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
        assert!(cycles.iter().any(|c| c.period == 10));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_min_len_two() {
        cyclic_subsequences(&ids(&[1, 2, 3]), 2);
    }
}
