//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;
use std::collections::BTreeSet;

/// An inclusive size band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// A strategy for `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeSet`s whose elements come from `element`.
/// Duplicates may leave the set smaller than the drawn size.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Give duplicates a few chances to be replaced, then accept a
        // smaller set: still within the band when min == 0, and callers
        // requesting tight bands from narrow domains accept best-effort.
        for _ in 0..target.saturating_mul(4) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}
