//! The [`Strategy`] trait and primitive strategies.

use rand::{Rng, RngCore, SeedableRng};

/// The deterministic per-case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Builds the generator for one case from its seed.
    pub fn from_seed_u64(seed: u64) -> TestRng {
        TestRng(rand::rngs::StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` holds; cases are re-drawn, and
    /// after too many misses the case is rejected (skipped).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        std::panic::panic_any(crate::test_runner::Reject);
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
