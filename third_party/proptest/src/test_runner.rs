//! Test-harness configuration and case seeding.

/// Per-`proptest!` configuration (only `cases` is honored by the stub).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Panic payload used by `prop_assume!` rejections; the harness skips
/// the case instead of failing the test.
#[derive(Clone, Copy, Debug)]
pub struct Reject;

/// The deterministic seed for one case index (SplitMix64 finalizer, so
/// consecutive cases get decorrelated generator states).
pub fn case_seed(case: u32) -> u64 {
    let mut z = (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
