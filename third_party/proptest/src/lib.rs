//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Covers the API surface the DEMON workspace uses: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), range and collection
//! strategies, `any::<T>()`, `prop_map`, and the `prop_assume!` /
//! `prop_assert*!` macros. Each test case is generated from a
//! deterministic per-case seed; there is **no shrinking** — on failure
//! the harness reports the case index and seed so the case can be
//! replayed, then re-raises the panic. See `third_party/README.md`.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let __seed = $crate::test_runner::case_seed(__case);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let mut __rng =
                                $crate::strategy::TestRng::from_seed_u64(__seed);
                            $(
                                let $arg = $crate::strategy::Strategy::generate(
                                    &($strat),
                                    &mut __rng,
                                );
                            )*
                            $body
                        }),
                    );
                    if let ::std::result::Result::Err(__e) = __outcome {
                        if __e
                            .downcast_ref::<$crate::test_runner::Reject>()
                            .is_some()
                        {
                            continue;
                        }
                        ::std::eprintln!(
                            "proptest: {} failed at case {} (seed {:#x}); \
                             no shrinking in the vendored stub",
                            ::std::stringify!($name),
                            __case,
                            __seed
                        );
                        ::std::panic::resume_unwind(__e);
                    }
                }
            }
        )*
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            ::std::panic::panic_any($crate::test_runner::Reject);
        }
    };
}

/// Asserts within a property body (fails the whole test; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { ::std::assert!($($tt)+) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { ::std::assert_eq!($($tt)+) };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { ::std::assert_ne!($($tt)+) };
}
