//! Boolean strategies.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// The fair-coin strategy type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any;

/// A fair coin.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}
