//! The common imports: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// Namespaced strategy modules, mirroring real proptest's `prop::*`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}
