//! `any::<T>()` — the canonical full-domain strategy per type.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// One draw from the full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! arb_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.gen::<f64>() * 1e9;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
