//! Minimal offline stand-in for the `serde_json` crate: a thin facade
//! over the vendored value-based `serde` stub, which owns the [`Value`]
//! tree, the JSON printer and the parser. This crate adds the
//! `to_*`/`from_*` entry points and the [`json!`] macro. See
//! `third_party/README.md`.

pub use serde::value::{Map, Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// A serialization or deserialization failure.
pub type Error = serde::de::Error;

/// Result alias matching real serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_json(&mut out);
    Ok(out)
}

/// Pretty JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_json_pretty(&mut out, 0);
    Ok(out)
}

/// Compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = Value::parse_json(s)?;
    T::from_value(&value)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::custom(format!("invalid UTF-8 in JSON: {e}")))?;
    from_str(s)
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-looking syntax. Supports objects with
/// string-literal keys, arrays, `null`, and arbitrary serializable
/// expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::__json_arr_val!(__arr [] $($tt)*);
        $crate::Value::Array(__arr)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::__json_entries!(__map $($tt)*);
        $crate::Value::Object(__map)
    }};
    ($expr:expr) => { $crate::to_value(&$expr) };
}

/// Internal: evaluates one munched value-token run to a `Value`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_value_of {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => { $crate::json!({ $($tt)* }) };
    ([ $($tt:tt)* ]) => { $crate::json!([ $($tt)* ]) };
    ($($expr:tt)+) => { $crate::to_value(&($($expr)+)) };
}

/// Internal: object-entry driver — expects `"key": <value tts> , ...`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_entries {
    ($map:ident) => {};
    ($map:ident $key:literal : $($rest:tt)*) => {
        $crate::__json_obj_val!($map $key [] $($rest)*)
    };
}

/// Internal: munches value tokens for one object entry until a
/// top-level comma (or end), then recurses into the entry driver.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_obj_val {
    ($map:ident $key:literal [$($acc:tt)+] , $($rest:tt)*) => {{
        $map.insert(
            ::std::string::ToString::to_string(&$key),
            $crate::__json_value_of!($($acc)+),
        );
        $crate::__json_entries!($map $($rest)*);
    }};
    ($map:ident $key:literal [$($acc:tt)+]) => {
        $map.insert(
            ::std::string::ToString::to_string(&$key),
            $crate::__json_value_of!($($acc)+),
        );
    };
    ($map:ident $key:literal [$($acc:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_obj_val!($map $key [$($acc)* $next] $($rest)*)
    };
}

/// Internal: munches array elements until top-level commas.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_arr_val {
    ($arr:ident []) => {};
    ($arr:ident [$($acc:tt)+] , $($rest:tt)*) => {{
        $arr.push($crate::__json_value_of!($($acc)+));
        $crate::__json_arr_val!($arr [] $($rest)*);
    }};
    ($arr:ident [$($acc:tt)+]) => {
        $arr.push($crate::__json_value_of!($($acc)+));
    };
    ($arr:ident [$($acc:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_arr_val!($arr [$($acc)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let n = 3u64;
        let v = json!({
            "a": 1,
            "b": [1, null, "x"],
            "c": { "nested": n },
            "d": n + 1,
            "e": "lit",
        });
        assert_eq!(
            v.to_string(),
            r#"{"a":1,"b":[1,null,"x"],"c":{"nested":3},"d":4,"e":"lit"}"#
        );
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([]).to_string(), "[]");
        assert_eq!(json!({}).to_string(), "{}");
    }

    #[test]
    fn string_roundtrip() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"[["a",1],["b",2]]"#);
        let back: Vec<(String, u64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_and_floats() {
        let s = to_string(&Some(1.5f64)).unwrap();
        assert_eq!(s, "1.5");
        let none: Option<f64> = from_str("null").unwrap();
        assert_eq!(none, None);
    }
}
