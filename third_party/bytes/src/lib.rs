//! Minimal, dependency-free stand-in for the `bytes` crate, covering the
//! API surface the DEMON workspace uses: cheaply-cloneable immutable
//! [`Bytes`], a growable [`BytesMut`] builder, and the [`BufMut`] write
//! trait. See `third_party/README.md` for why this is vendored.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply-cloneable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies a static slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A `Vec` copy of the contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A copy of the sub-range (the real crate shares storage; this stub
    /// copies, which is fine for the sizes the workspace slices).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// Write-side trait: append fixed-width values and slices.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }
}
