//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! Implements the API surface the DEMON workspace uses — `Rng`
//! (`gen`/`gen_range`/`gen_bool`/`sample`), `SeedableRng::seed_from_u64`,
//! `StdRng`/`SmallRng`, `SliceRandom::shuffle`/`choose`, and the
//! `Distribution` trait — over a xoshiro256++ generator seeded through
//! SplitMix64. Streams are deterministic but do **not** match the real
//! `rand` crate's output; every seed-sensitive golden in this repo was
//! generated with this generator. See `third_party/README.md`.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};

/// The core of every generator: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A value uniform over `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        unit_f64(self) < p
    }

    /// A value sampled from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that `gen_range` can sample from.
///
/// A single blanket impl per range shape (mirroring the real crate's
/// structure) so type inference can unify `T` with the range's element
/// type even when the literal's integer type is still open — e.g.
/// `arr[rng.gen_range(0..3)]`.
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types `gen_range` can draw uniformly.
pub trait SampleUniform: Sized {
    /// One draw from `[low, high)` or, when `inclusive`, `[low, high]`.
    fn sample_between<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range on empty range");
                } else {
                    assert!(low < high, "gen_range on empty range");
                }
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range on empty range");
                } else {
                    assert!(low < high, "gen_range on empty range");
                }
                low + (high - low) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// The common imports: traits plus the standard generators.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input sorted");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
