//! The `Distribution` sampling trait and the `Standard` distribution.

use crate::{unit_f64, RngCore};

/// Types from which values of `T` can be sampled.
pub trait Distribution<T> {
    /// One draw.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<'a, T, D: Distribution<T> + ?Sized> Distribution<T> for &'a D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
