//! Minimal, dependency-free stand-in for the `rand_distr` crate:
//! `Normal` (Box–Muller), `Poisson` (Knuth for small λ, normal
//! approximation for large λ), `Exp` and `Exp1` (inversion). Sampling
//! streams are deterministic but do not match the real crate's. See
//! `third_party/README.md`.

pub use rand::distributions::Distribution;
use rand::RngCore;

fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // (0, 1]: safe to pass to ln().
    ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64)
}

/// Gaussian with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Rejected construction parameters (non-finite or negative scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid Normal parameters")
    }
}
impl std::error::Error for NormalError {}

impl Normal<f64> {
    /// A normal distribution, or an error if `std_dev` is negative or
    /// either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal<f64>, NormalError> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; the sine half is discarded to keep sampling stateless.
    let u1 = unit_open(rng);
    let u2 = unit_open(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Poisson with the given mean.
#[derive(Clone, Copy, Debug)]
pub struct Poisson<F> {
    lambda: F,
}

/// Rejected construction parameters (λ must be finite positive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoissonError;

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid Poisson parameter")
    }
}
impl std::error::Error for PoissonError {}

impl Poisson<f64> {
    /// A Poisson distribution, or an error unless `lambda` is finite
    /// and positive.
    pub fn new(lambda: f64) -> Result<Poisson<f64>, PoissonError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Poisson { lambda })
        } else {
            Err(PoissonError)
        }
    }
}

impl Distribution<f64> for Poisson<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let limit = (-self.lambda).exp();
            let mut product = unit_open(rng);
            let mut count = 0u64;
            while product > limit {
                product *= unit_open(rng);
                count += 1;
            }
            count as f64
        } else {
            // Normal approximation, adequate for generator workloads.
            let draw = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            draw.round().max(0.0)
        }
    }
}

/// Exponential with rate λ.
#[derive(Clone, Copy, Debug)]
pub struct Exp<F> {
    lambda: F,
}

/// Rejected construction parameters (rate must be finite positive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpError;

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid Exp parameter")
    }
}
impl std::error::Error for ExpError {}

impl Exp<f64> {
    /// An exponential distribution, or an error unless `lambda` is
    /// finite and positive.
    pub fn new(lambda: f64) -> Result<Exp<f64>, ExpError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ExpError)
        }
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// The unit exponential (λ = 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Exp1;

impl Distribution<f64> for Exp1 {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_moments_roughly_match() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_mean_roughly_matches_small_and_large_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        for lambda in [3.0, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let n = 20_000;
            let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.05 + 0.2,
                "λ={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn exp1_mean_roughly_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean = (0..n).map(|_| Exp1.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }
}
