//! Minimal offline stand-in for `serde_derive`, written without
//! `syn`/`quote`: the input `TokenStream` is walked by hand into a small
//! structural model, and the generated impls are rendered as strings and
//! re-parsed. Targets the vendored value-based `serde` stub: derived
//! `Serialize` emits `fn to_value(&self) -> Value`, derived
//! `Deserialize` emits `fn from_value(&Value) -> Result<Self, Error>`.
//!
//! Supported shapes (everything this workspace uses):
//! * structs with named fields → JSON objects
//! * newtype / transparent structs → the inner value
//! * multi-field tuple structs → JSON arrays
//! * enums → externally tagged (unit → `"Variant"`, data →
//!   `{"Variant": ...}`)
//! * generic parameters (each gains a `Serialize`/`Deserialize` bound)
//! * `#[serde(transparent|default|skip|with = "module")]`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct Attrs {
    transparent: bool,
    default: bool,
    skip: bool,
    deny_unknown_fields: bool,
    with: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: Attrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Kind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    /// Generic parameter declarations, e.g. `["T"]` or `["'a", "T: Clone"]`.
    generic_decls: Vec<String>,
    attrs: Attrs,
    kind: Kind,
}

/// Derives value-based `Serialize` (see the crate docs).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let model = parse(input);
    render_serialize(&model).parse().expect("serde_derive: generated Serialize impl parses")
}

/// Derives value-based `Deserialize` (see the crate docs).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let model = parse(input);
    render_deserialize(&model).parse().expect("serde_derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let attrs = take_attrs(&tts, &mut i);
    skip_visibility(&tts, &mut i);

    let keyword = match &tts[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;

    let name = match &tts[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;

    let generic_decls = take_generics(&tts, &mut i);

    // Skip a where-clause if present (none in this workspace, but cheap).
    while i < tts.len() {
        match &tts[i] {
            TokenTree::Group(g)
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let kind = if keyword == "enum" {
        let body = expect_brace(&tts, i);
        Kind::Enum(parse_variants(body))
    } else {
        match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Kind::Unit,
        }
    };

    Input { name, generic_decls, attrs, kind }
}

fn expect_brace(tts: &[TokenTree], i: usize) -> TokenStream {
    match tts.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected braced body, found {other:?}"),
    }
}

/// Consumes leading `#[...]` attributes, folding any `#[serde(...)]`
/// contents into the returned `Attrs`.
fn take_attrs(tts: &[TokenTree], i: &mut usize) -> Attrs {
    let mut attrs = Attrs::default();
    while let Some(TokenTree::Punct(p)) = tts.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        // Inner attributes (`#![...]`) can't appear here; next is `[...]`.
        if let Some(TokenTree::Group(g)) = tts.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                merge_serde_attr(&mut attrs, g.stream());
                *i += 1;
                continue;
            }
        }
        panic!("serde_derive: malformed attribute");
    }
    attrs
}

fn merge_serde_attr(attrs: &mut Attrs, attr_body: TokenStream) {
    let tts: Vec<TokenTree> = attr_body.into_iter().collect();
    match (tts.first(), tts.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                match &inner[j] {
                    TokenTree::Ident(word) => match word.to_string().as_str() {
                        "transparent" => attrs.transparent = true,
                        "default" => attrs.default = true,
                        "deny_unknown_fields" => attrs.deny_unknown_fields = true,
                        "skip" | "skip_serializing" | "skip_deserializing" => {
                            attrs.skip = true
                        }
                        "with" => {
                            // with = "module::path"
                            if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                                let text = lit.to_string();
                                attrs.with =
                                    Some(text.trim_matches('"').to_string());
                                j += 2;
                            }
                        }
                        other => panic!(
                            "serde_derive stub: unsupported serde attribute `{other}`"
                        ),
                    },
                    TokenTree::Punct(_) => {}
                    other => panic!(
                        "serde_derive stub: unsupported serde attribute token {other}"
                    ),
                }
                j += 1;
            }
        }
        _ => {} // non-serde attribute (doc comment, derive, repr, ...)
    }
}

fn skip_visibility(tts: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tts.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tts.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Consumes `<...>` after the type name, returning the comma-separated
/// parameter declarations.
fn take_generics(tts: &[TokenTree], i: &mut usize) -> Vec<String> {
    match tts.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut segments = Vec::new();
    let mut current = String::new();
    while depth > 0 {
        let tt = tts
            .get(*i)
            .unwrap_or_else(|| panic!("serde_derive: unterminated generics"));
        *i += 1;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    current.push('>');
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                segments.push(current.trim().to_string());
                current.clear();
            }
            other => {
                current.push_str(&other.to_string());
                current.push(' ');
            }
        }
    }
    if !current.trim().is_empty() {
        segments.push(current.trim().to_string());
    }
    segments
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tts: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tts.len() {
        let attrs = take_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        skip_visibility(&tts, &mut i);
        let name = match &tts[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tts[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field, found {other}"),
        }
        skip_type(&tts, &mut i);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Skips one type, stopping after the top-level `,` (or at end).
fn skip_type(tts: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    while let Some(tt) = tts.get(*i) {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    *i += 1;
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        *i += 1;
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tts: Vec<TokenTree> = body.into_iter().collect();
    if tts.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tts.len() {
        // Field: attrs, visibility, then a type up to the top-level comma.
        let _ = take_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        skip_visibility(&tts, &mut i);
        skip_type(&tts, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tts: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tts.len() {
        let _attrs = take_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        let name = match &tts[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to the variant separator (also skips discriminants).
        while let Some(tt) = tts.get(i) {
            i += 1;
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------- rendering

/// `impl<...>` generics with the given trait bound added to every type
/// parameter, plus the bare `<...>` for the type position.
fn generics(input: &Input, bound: &str) -> (String, String) {
    if input.generic_decls.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_parts = Vec::new();
    let mut ty_parts = Vec::new();
    for decl in &input.generic_decls {
        let head = decl.split([':', '=']).next().unwrap().trim().to_string();
        ty_parts.push(head.clone());
        if head.starts_with('\'') || decl.trim_start().starts_with("const ") {
            impl_parts.push(decl.clone());
        } else if decl.contains(':') {
            impl_parts.push(format!("{decl} + {bound}"));
        } else {
            impl_parts.push(format!("{decl}: {bound}"));
        }
    }
    (
        format!("<{}>", impl_parts.join(", ")),
        format!("<{}>", ty_parts.join(", ")),
    )
}

fn ser_field_expr(field: &Field, access: &str) -> String {
    match &field.attrs.with {
        Some(path) => format!("{path}::to_value({access})"),
        None => format!("::serde::Serialize::to_value({access})"),
    }
}

fn render_serialize(input: &Input) -> String {
    let (impl_gen, ty_gen) = generics(input, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Tuple(1) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
            if input.attrs.transparent {
                let f = live
                    .first()
                    .expect("serde(transparent) needs one unskipped field");
                ser_field_expr(f, &format!("&self.{}", f.name))
            } else {
                let mut s = String::from("{ let mut __m = ::serde::Map::new();\n");
                for f in live {
                    s.push_str(&format!(
                        "__m.insert(::std::string::String::from(\"{}\"), {});\n",
                        f.name,
                        ser_field_expr(f, &format!("&self.{}", f.name))
                    ));
                }
                s.push_str("::serde::Value::Object(__m) }");
                s
            }
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> =
                            (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Array(::std::vec![{}])",
                                items.join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::__tag(\"{vname}\", {inner}),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "{ let mut __m = ::serde::Map::new();\n",
                        );
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            inner.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{0}\"), {1});\n",
                                f.name,
                                ser_field_expr(f, &f.name)
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__m) }");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => \
                             ::serde::__tag(\"{vname}\", {inner}),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_gen} ::serde::Serialize for {name}{ty_gen} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn de_field_expr(field: &Field, value: &str) -> String {
    match &field.attrs.with {
        Some(path) => format!("{path}::from_value({value})?"),
        None => format!("::serde::Deserialize::from_value({value})?"),
    }
}

/// The `match obj.get("f")` expression for one named field.
fn de_named_field(struct_name: &str, f: &Field) -> String {
    if f.attrs.skip {
        return "::std::default::Default::default()".to_string();
    }
    let missing = if f.attrs.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::de::Error::custom(\
             \"missing field `{}` in {}\"))",
            f.name, struct_name
        )
    };
    format!(
        "match __o.get(\"{0}\") {{\n\
         ::std::option::Option::Some(__x) => {1},\n\
         ::std::option::Option::None => {missing},\n}}",
        f.name,
        de_field_expr(f, "__x")
    )
}

fn render_deserialize(input: &Input) -> String {
    let (impl_gen, ty_gen) = generics(input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::Unit => format!(
            "if __v.is_null() {{ ::std::result::Result::Ok({name}) }} else {{ \
             ::std::result::Result::Err(::serde::de::Error::custom(\
             \"expected null for unit struct {name}\")) }}"
        ),
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::Tuple(n) => {
            let mut s = format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::de::Error::custom(\"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::de::Error::custom(\"wrong tuple arity for {name}\")); }}\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                .collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
            s
        }
        Kind::Named(fields) => {
            if input.attrs.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .expect("serde(transparent) needs one unskipped field");
                let mut inits = Vec::new();
                for g in fields {
                    if g.name == f.name {
                        inits.push(format!("{}: {}", f.name, de_field_expr(f, "__v")));
                    } else {
                        inits.push(format!(
                            "{}: ::std::default::Default::default()",
                            g.name
                        ));
                    }
                }
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            } else {
                let mut s = format!(
                    "let __o = __v.as_object().ok_or_else(|| \
                     ::serde::de::Error::custom(\"expected object for {name}\"))?;\n"
                );
                if input.attrs.deny_unknown_fields {
                    let mut known: Vec<String> = fields
                        .iter()
                        .filter(|f| !f.attrs.skip)
                        .map(|f| format!("\"{}\"", f.name))
                        .collect();
                    if known.is_empty() {
                        // `matches!(x,)` is ill-formed; no field is known.
                        known.push("\"\" if false".to_string());
                    }
                    s.push_str(&format!(
                        "for (__k, _) in __o.iter() {{\n\
                         if !matches!(__k.as_str(), {}) {{\n\
                         return ::std::result::Result::Err(::serde::de::Error::custom(\
                         ::std::format!(\"unknown field `{{}}` in {name}\", __k)));\n\
                         }}\n}}\n",
                        known.join(" | ")
                    ));
                }
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}: {}", f.name, de_named_field(name, f)))
                    .collect();
                s.push_str(&format!(
                    "::std::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join(",\n")
                ));
                s
            }
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{ let __a = __inner.as_array()\
                             .ok_or_else(|| ::serde::de::Error::custom(\
                             \"expected array for {name}::{vname}\"))?;\n\
                             if __a.len() != {n} {{ return \
                             ::std::result::Result::Err(::serde::de::Error::custom(\
                             \"wrong arity for {name}::{vname}\")); }}\n"
                        );
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&__a[{k}])?")
                            })
                            .collect();
                        arm.push_str(&format!(
                            "::std::result::Result::Ok({name}::{vname}({})) }}\n",
                            items.join(", ")
                        ));
                        data_arms.push_str(&arm);
                    }
                    VariantKind::Named(fields) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{ let __o = __inner.as_object()\
                             .ok_or_else(|| ::serde::de::Error::custom(\
                             \"expected object for {name}::{vname}\"))?;\n"
                        );
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{}: {}",
                                    f.name,
                                    de_named_field(&format!("{name}::{vname}"), f)
                                )
                            })
                            .collect();
                        arm.push_str(&format!(
                            "::std::result::Result::Ok({name}::{vname} {{\n{}\n}}) }}\n",
                            inits.join(",\n")
                        ));
                        data_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"expected string or single-key object for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_gen} ::serde::Deserialize for {name}{ty_gen} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
