//! The JSON value tree, plus text printing and parsing.

use std::fmt;

/// Any JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Map),
}

/// A JSON number: unsigned, signed-negative, or float.
#[derive(Clone, Copy, Debug)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            (N::PosInt(a), N::NegInt(b)) | (N::NegInt(b), N::PosInt(a)) => {
                b >= 0 && a == b as u64
            }
            _ => false,
        }
    }
}

impl Number {
    /// Integer form if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(v) => Some(v),
            N::NegInt(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Integer form if it fits an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// The value as a double (always available).
    pub fn as_f64(&self) -> f64 {
        match self.n {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        }
    }

    /// Whether this is the float representation.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }

    fn write(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self.n {
            N::PosInt(v) => {
                let _ = write!(out, "{v}");
            }
            N::NegInt(v) => {
                let _ = write!(out, "{v}");
            }
            N::Float(v) => {
                // Shortest round-trip form; keep a ".0" so floats stay
                // floats across a parse round-trip.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Number {
        Number { n: N::PosInt(v) }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Number {
        if v >= 0 {
            Number { n: N::PosInt(v as u64) }
        } else {
            Number { n: N::NegInt(v) }
        }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Number {
        Number { n: N::Float(v) }
    }
}

/// A JSON object that preserves insertion order (linear key lookup —
/// objects in this workspace are small).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts, replacing (and returning) any existing value for `key`.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Value {
    /// The object form, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array form, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string form, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The `i64`, if this is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The double, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Compact JSON text.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => n.write(out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty JSON text (two-space indent, like `serde_json`).
    pub fn write_json_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_json_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_json_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_json(out),
        }
    }

    /// Parses JSON text into a value tree.
    pub fn parse_json(input: &str) -> Result<Value, crate::de::Error> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s);
        f.write_str(&s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> crate::de::Error {
        crate::de::Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), crate::de::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, crate::de::Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, crate::de::Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, crate::de::Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, crate::de::Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, crate::de::Error> {
        // self.pos is on the 'u'.
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(c)
                            .ok_or_else(|| self.err("invalid surrogate pair"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, crate::de::Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, crate::de::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let text = r#"{"a":[1,-2,3.5,null,true],"b":"x\"y\n","c":{"d":18446744073709551615}}"#;
        let v = Value::parse_json(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn float_keeps_decimal_point() {
        let v = Value::Number(Number::from(2.0));
        assert_eq!(v.to_string(), "2.0");
        let back = Value::parse_json("2.0").unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse_json(r#""A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse_json("{").is_err());
        assert!(Value::parse_json("[1,]").is_err());
        assert!(Value::parse_json("nul").is_err());
        assert!(Value::parse_json("1 2").is_err());
    }

    #[test]
    fn pretty_matches_shape() {
        let v = Value::parse_json(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let mut s = String::new();
        v.write_json_pretty(&mut s, 0);
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
    }
}
