//! Value-based serialization: render a type to a JSON [`Value`] tree.

use crate::value::{Map, Number, Value};

/// Types renderable to a JSON [`Value`].
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_value(&self) -> Value;
}

macro_rules! ser_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::from(v))
                } else {
                    // JSON has no NaN/±inf; serde_json writes null.
                    Value::Null
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// Maps serialize as sorted `[key, value]` pair arrays: JSON objects only
// admit string keys, and this workspace keys maps by structured types.
impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

// Hash maps sort by key before rendering so serialized output never
// depends on hasher state or insertion order.
impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
