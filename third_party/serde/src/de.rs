//! Value-based deserialization: rebuild a type from a JSON [`Value`].

use crate::value::{Map, Value};
use std::fmt;

/// A deserialization (or JSON parse) failure.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types rebuildable from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Owned deserialization marker (all stub deserialization is owned).
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

fn expected(what: &str, v: &Value) -> Error {
    let kind = match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    };
    Error::custom(format!("expected {what}, found {kind}"))
}

macro_rules! de_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| expected("an unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),* $(,)?) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| expected("an integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Null round-trips the non-finite floats Serialize wrote out.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| expected("a number", v)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| expected("a boolean", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| expected("a string", v))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| expected("a string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| expected("an array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| expected("an array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

// Mirrors the map encoding in `ser`: a sorted array of `[key, value]`
// pairs (JSON objects only admit string keys).
impl<K: Deserialize + Ord, V: Deserialize> Deserialize
    for std::collections::BTreeMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| expected("an array", v))?;
        items.iter().map(<(K, V)>::from_value).collect()
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| expected("an array", v))?;
        items.iter().map(<(K, V)>::from_value).collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| expected("an array", v))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected an array of {}, found {} elements",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

de_tuple! {
    (1, A.0)
    (2, A.0, B.1)
    (3, A.0, B.1, C.2)
    (4, A.0, B.1, C.2, D.3)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for Map {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object().cloned().ok_or_else(|| expected("an object", v))
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(expected("null", v))
        }
    }
}
