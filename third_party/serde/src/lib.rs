//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! Unlike real serde's visitor architecture, this stub is **value-based**:
//! [`Serialize`] renders a type to a JSON [`Value`] tree and
//! [`Deserialize`] reads one back. The derive macros (re-exported from
//! the vendored `serde_derive`) generate impls against these traits and
//! understand the `#[serde(...)]` attributes this workspace uses:
//! `transparent`, `default`, `skip`, and `with = "module"` (where the
//! module provides `to_value`/`from_value`). The JSON text format —
//! printing and parsing — also lives here so `serde_json` can stay a
//! thin facade. See `third_party/README.md` for why this is vendored.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::{Map, Number, Value};

pub use serde_derive::{Deserialize, Serialize};

/// Builds the externally-tagged enum encoding `{"tag": value}`.
/// Used by derive-generated code; not part of the public API.
#[doc(hidden)]
pub fn __tag(tag: &str, value: Value) -> Value {
    let mut m = Map::new();
    m.insert(tag.to_string(), value);
    Value::Object(m)
}
