//! Minimal, dependency-free stand-in for the `criterion` crate: the same
//! bench-definition API (`bench_function`, groups, `iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!`), but measurement is a simple
//! fixed-iteration median with no statistical analysis, plots, or
//! baseline storage. Timings print one line per benchmark. See
//! `third_party/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` sizes its batches (ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One value per batch.
    PerIteration,
}

/// A benchmark identifier: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter as the id.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    fn run(samples: usize) -> Bencher {
        Bencher { samples, elapsed: Vec::with_capacity(samples) }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed.push(t0.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.elapsed.is_empty() {
            println!("bench {id:<40} (no samples)");
            return;
        }
        self.elapsed.sort_unstable();
        let median = self.elapsed[self.elapsed.len() / 2];
        println!(
            "bench {id:<40} median {:>12.3} ms ({} samples)",
            median.as_secs_f64() * 1e3,
            self.elapsed.len()
        );
    }
}

/// The top-level benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Few samples: the stub is a smoke-runner, not a statistics
        // engine; override with CRITERION_SAMPLES.
        let sample_size = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(3);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::run(self.sample_size);
        f(&mut b);
        b.report(id);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Criterion
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::run(self.sample_size);
        f(&mut b, input);
        b.report(&id.id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::run(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::run(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
