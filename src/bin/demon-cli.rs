//! `demon-cli` — drive the DEMON framework from the command line.
//!
//! ```text
//! demon-cli generate quest    --spec 2M.20L.1I.4pats.4plen --scale 0.01 --blocks 4 --out store/
//! demon-cli generate webtrace --days 21 --rate 300 --granularity 6 --out trace/
//! demon-cli inspect  <store>
//! demon-cli verify   <store>
//! demon-cli mine     <store> --minsup 0.01 [--rules 0.8 --top 20] [--salvage]
//! demon-cli monitor  <store> --minsup 0.01 [--window 4] [--bss 1011] [--counter ecut+] [--salvage]
//! demon-cli patterns <store> [--alpha 0.12] [--min-len 4] [--window N]
//! demon-cli serve    --listen 127.0.0.1:7677 --model itemsets --items 1000 --minsup 0.01 [--workers 4]
//! demon-cli client   <addr> ingest <store> | ingest-points | ingest-labeled | query-model | sequences | stats | snapshot <dir> | shutdown
//! ```
//!
//! Stores are directories in the `demon_itemsets::persist` layout;
//! `generate` creates them, every other command replays them. `verify`
//! is the read-only fsck (exit status 1 when the store is damaged), and
//! `--salvage` loads a damaged store by quarantining the broken tail
//! instead of aborting.
//!
//! `serve` runs the long-lived monitoring daemon (`demon_serve`): blocks
//! stream in over TCP through a bounded ingest queue while concurrent
//! clients query the live model, the compact pattern sequences and the
//! stats table; `client` drives it. `client query-model` prints exactly
//! what `mine` prints for the same stream — the serving path is
//! byte-compatible with the batch path. `--model clusters|trees` serves
//! BIRCH+ clusters or windowed decision trees instead of itemsets;
//! `client ingest-points` / `ingest-labeled` stream deterministic
//! Gaussian blocks to those daemons.
//!
//! `--threads N` (any command) sets the process-wide thread count of the
//! parallel mining paths; `0` or omitting it means one thread per core.
//! Results are bit-identical at any thread count.
//!
//! `--memory-budget BYTES` (any command that holds blocks) bounds the
//! bytes of block data kept resident per in-process store; the rest
//! spills to a per-process temp directory and is faulted back on demand.
//! Models are bit-identical to an unbounded run.
//!
//! `--stats` (any command) prints the operation-counter table to stderr
//! after the command runs; `--trace-out FILE` writes the structured JSONL
//! event log (span timings plus a final `counters` event). Counter totals
//! are identical at any `--threads` setting.

use demon::core::bss::{BlockSelector, WiBss, WrBss};
use demon::core::engine::UwEngine;
use demon::core::report;
use demon::core::{Gemm, ItemsetMaintainer};
use demon::datagen::webtrace::{self, WebTraceConfig, WebTraceGen};
use demon::datagen::{ClusterDataGen, ClusterParams, QuestGen, QuestParams};
use demon::focus::{
    CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig, WindowedCompactMiner,
};
use demon::itemsets::persist::{
    load_store_configured, save_store, verify_store, RecoveryPolicy,
};
use demon::itemsets::{derive_rules, BlockRef, CounterKind, FrequentItemsets, TxStore};
use demon::serve::{Client, ServeConfig, Server};
use demon::store::StoreConfig;
use demon::trees::LabeledPoint;
use demon::types::{obs, wal, DemonError};
use demon::types::{Block, BlockId, MinSupport, ModelClass, Timestamp, TxBlock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
demon-cli — mining and monitoring evolving data (DEMON, ICDE 2000)

USAGE:
  demon-cli generate quest    --out DIR [--spec S] [--scale F] [--blocks N] [--seed N]
  demon-cli generate webtrace --out DIR [--days N] [--rate F] [--granularity H] [--seed N]
  demon-cli inspect  STORE
  demon-cli verify   STORE
  demon-cli mine     STORE --minsup F [--rules F] [--top N] [--salvage]
  demon-cli monitor  STORE --minsup F [--window N] [--bss BITS] [--counter KIND] [--salvage]
  demon-cli patterns STORE [--alpha F] [--min-len N] [--window N] [--salvage]
  demon-cli serve    [--listen ADDR] [--model CLASS] [--items N] [--minsup F]
                     [--counter KIND] [--dim N] [--k N] [--classes N]
                     [--eps F] [--min-pts N]
                     [--window N] [--pattern-window N] [--alpha F] [--workers N]
                     [--shards N] [--queue N] [--queue-timeout-ms N] [--timeout-ms N]
                     [--wal-dir DIR] [--wal-max-bytes N] [--no-wal] [--wal-group-commit]
  demon-cli client   ADDR ingest STORE [--salvage]
  demon-cli client   ADDR ingest-points  [--spec S] [--blocks N] [--seed N] [--model CLASS]
  demon-cli client   ADDR ingest-labeled [--spec S] [--blocks N] [--seed N]
  demon-cli client   ADDR query-model [--top N] [--json] [--model CLASS]
  demon-cli client   ADDR sequences | stats | shutdown
  demon-cli client   ADDR snapshot DIR

COUNTERS: ptscan | ecut | ecut+ | adaptive
SERVE:    serve runs the TCP monitoring daemon (default 127.0.0.1:7677;
          port 0 picks an ephemeral port, printed on startup). client
          sends one verb: ingest streams a store's blocks, query-model
          prints what mine prints (--json for the raw model), snapshot
          persists the monitored store server-side, shutdown drains the
          ingest queue and exits the daemon cleanly.
MODEL:    --model itemsets|clusters|trees|dbscan picks the served model
          class (default itemsets, the legacy daemon). clusters
          maintains BIRCH+ over point blocks (--dim, --k centroids);
          trees maintains windowed decision trees over labeled points
          (--dim, --classes labels); dbscan maintains incremental
          DBSCAN density models (--dim, --eps radius, --min-pts core
          threshold) whose --window slides by deleting the departing
          block instead of refitting. client ingest-points /
          ingest-labeled stream deterministic Gaussian blocks (--spec
          NM.Kc.dd, --seed) to such a daemon (ingest-points --model
          dbscan stamps the density class), and query-model --model
          CLASS pins the class (the daemon refuses a mismatched class
          with a typed error) and prints the raw model JSON.
BSS:      a bit string like 1011; window-relative when --window is set,
          window-independent (periodic) otherwise.
WAL:      --wal-dir DIR serves durably: every ingest is appended to a
          write-ahead log and fsynced before the ack, and on restart the
          daemon recovers from the newest snapshot plus the WAL tail (a
          torn final record is dropped, not fatal). --wal-max-bytes sets
          the log size that triggers background compaction (snapshot +
          log rotation, atomic); --no-wal disables durability even when
          --wal-dir is present. --wal-group-commit coalesces fsyncs
          across queued blocks (acks still wait for the covering
          fsync). verify also fscks a WAL directory.
SHARDS:   --shards N (default 1) partitions the serving state into N
          shards (round-robin by block id) with per-shard WAL lanes and
          epoch-swapped query replicas; answers are byte-identical at
          any shard count. --shards 1 is the original single-lock
          daemon; --window requires --shards 1. Sharding needs an exact
          shard merge, so --shards ≥ 2 is itemsets-only (a clusters,
          trees or dbscan daemon refuses it with a typed error).
VERIFY:   re-checks every frame and checksum; exit status 1 on damage.
SALVAGE:  --salvage loads a damaged store by quarantining corrupt files
          and keeping the longest consistent block prefix.
THREADS:  --threads N (any command) sets the thread count of the
          parallel mining paths; 0 = one per core (the default).
          Results are bit-identical at any thread count.
MEMORY:   --memory-budget BYTES bounds resident block bytes per store;
          excess blocks spill to a temp directory and are faulted back
          on demand. Models are identical to an unbounded run.
STATS:    --stats (any command) prints operation counters to stderr;
          --trace-out FILE writes the JSONL event log. Counter totals
          do not depend on --threads.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["salvage", "stats", "json", "no-wal", "wal-group-commit"];

/// Splits arguments into positionals and `--flag value` pairs
/// (boolean flags like `--salvage` take no value).
fn parse(args: &[String]) -> Result<(Vec<&str>, HashMap<&str, &str>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.insert(name, "true");
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.insert(name, value.as_str());
                i += 2;
            }
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag_parse<T: std::str::FromStr>(
    flags: &HashMap<&str, &str>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse {v:?}")),
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (positional, flags) = parse(args)?;
    let threads: usize = flag_parse(&flags, "threads", 0)?;
    demon::types::parallel::set_global(demon::types::Parallelism::new(threads));
    let stats = flags.contains_key("stats");
    let trace_out = flags.get("trace-out").map(PathBuf::from);
    if stats || trace_out.is_some() {
        obs::reset();
        obs::enable();
    }
    let ok = |()| ExitCode::SUCCESS;
    let result = match positional.first().copied() {
        Some("generate") => generate(&positional, &flags).map(ok),
        Some("inspect") => inspect(&positional, &flags).map(ok),
        Some("verify") => verify(&positional),
        Some("mine") => mine(&positional, &flags).map(ok),
        Some("monitor") => monitor(&positional, &flags).map(ok),
        Some("patterns") => patterns(&positional, &flags).map(ok),
        Some("serve") => serve(&flags).map(ok),
        Some("client") => client(&positional, &flags).map(ok),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    // Flush observability output even when the command failed: a partial
    // trace of the work done before the error is still useful.
    finish_obs(stats, trace_out.as_deref())?;
    // Every engine store has dropped by now and removed its own spill
    // files; sweep the per-process scaffolding directories they sat in.
    if flags.contains_key("memory-budget") {
        let _ = std::fs::remove_dir_all(spill_base());
    }
    result
}

/// Renders `--stats` to stderr and writes the `--trace-out` JSONL file,
/// then disables the recorder.
fn finish_obs(stats: bool, trace_out: Option<&Path>) -> Result<(), String> {
    if !obs::is_enabled() {
        return Ok(());
    }
    obs::emit_counters_event();
    if let Some(path) = trace_out {
        std::fs::write(path, obs::events_jsonl())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if stats {
        eprint!("{}", obs::render_table(&obs::snapshot()));
    }
    obs::disable();
    Ok(())
}

fn store_arg<'a>(positional: &[&'a str]) -> Result<&'a Path, String> {
    positional
        .get(1)
        .map(|p| Path::new(*p))
        .ok_or_else(|| "missing STORE directory argument".to_string())
}

/// The storage-engine config behind `--memory-budget BYTES`: block data
/// beyond the budget spills to a per-process temp directory (removed on
/// exit) and is faulted back on demand. Each in-process store gets its
/// own subdirectory named by `label`. Omitting the flag keeps every
/// block in memory, as before.
fn store_config(flags: &HashMap<&str, &str>, label: &str) -> Result<StoreConfig, String> {
    match flags.get("memory-budget") {
        None => Ok(StoreConfig::InMemory),
        Some(v) => {
            let bytes: u64 = v
                .parse()
                .map_err(|_| format!("--memory-budget: cannot parse {v:?}"))?;
            Ok(StoreConfig::budget(spill_base().join(label), bytes))
        }
    }
}

/// The per-process root under which every `--memory-budget` store
/// spills; removed wholesale at the end of `run`.
fn spill_base() -> PathBuf {
    std::env::temp_dir().join(format!("demon-spill-{}", std::process::id()))
}

/// Fetches a block the store listed. A failure to fault it back in (a
/// damaged or missing spill file) is a CLI error, not a panic.
fn block_ref<'s>(store: &'s TxStore, id: BlockId) -> Result<BlockRef<'s>, String> {
    match store.try_block(id) {
        Ok(Some(b)) => Ok(b),
        Ok(None) => Err(format!("block {id} is listed but missing from the store")),
        Err(e) => Err(format!("reading block {id}: {e}")),
    }
}

/// Loads the store named on the command line. With `--salvage`, a damaged
/// store is recovered to its longest consistent prefix (what was dropped
/// goes to stderr) instead of failing the command.
fn load(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<TxStore, String> {
    let dir = store_arg(positional)?;
    let config = store_config(flags, "replay")?;
    if !flags.contains_key("salvage") {
        return load_store_configured(dir, RecoveryPolicy::Strict, &config)
            .map(|(store, _)| store)
            .map_err(|e| format!("loading {}: {e}", dir.display()));
    }
    let (store, report) = load_store_configured(dir, RecoveryPolicy::SalvagePrefix, &config)
        .map_err(|e| format!("salvaging {}: {e}", dir.display()))?;
    if !report.is_clean() {
        if let Some(cause) = &report.first_error {
            eprintln!("salvage: {cause}");
        }
        if !report.dropped_blocks.is_empty() {
            eprintln!(
                "salvage: kept blocks {:?}, dropped {:?}",
                report.loaded_blocks, report.dropped_blocks
            );
        }
        for q in &report.quarantined {
            eprintln!("salvage: quarantined {}", q.display());
        }
        if report.intervals_lost {
            eprintln!("salvage: manifest reconstructed from block files; intervals lost");
        }
    }
    Ok(store)
}

/// The read-only fsck behind `demon-cli verify`. A WAL directory (the
/// daemon's `--wal-dir`) is recognised by its layout and checked with
/// the recovery reader instead of the store reader.
fn verify(positional: &[&str]) -> Result<ExitCode, String> {
    let dir = store_arg(positional)?;
    let is_wal_dir = dir.join(wal::CURRENT_FILE).exists()
        || !wal::list_wal_generations(dir)
            .map_err(|e| format!("listing {}: {e}", dir.display()))?
            .is_empty();
    if is_wal_dir {
        return verify_wal_dir(dir);
    }
    let report =
        verify_store(dir).map_err(|e| format!("verifying {}: {e}", dir.display()))?;
    println!("checked {} file(s)", report.checked.len());
    if !report.stray_tmp.is_empty() {
        println!(
            "{} stray tmp file(s) (benign crash residue)",
            report.stray_tmp.len()
        );
    }
    if report.quarantined_files > 0 {
        println!("{} file(s) in quarantine/", report.quarantined_files);
    }
    if report.is_clean() {
        println!("store is clean");
        return Ok(ExitCode::SUCCESS);
    }
    for (file, detail) in &report.damaged {
        println!("DAMAGED {}: {detail}", file.display());
    }
    println!(
        "{} damaged file(s) — run a command with --salvage to recover",
        report.damaged.len()
    );
    Ok(ExitCode::FAILURE)
}

/// Fsck for a daemon WAL directory: the `CURRENT` pointer, every WAL
/// generation (a torn tail is *recoverable*, not damage — recovery
/// truncates it), and the snapshot the pointer names. Exit status 1
/// only for damage recovery could not absorb.
fn verify_wal_dir(dir: &Path) -> Result<ExitCode, String> {
    let mut damaged = 0usize;
    let current = match wal::read_current(dir) {
        Ok(gen) => {
            println!("WAL directory (current generation {gen})");
            gen
        }
        Err(e) => {
            println!("DAMAGED {}: {e}", dir.join(wal::CURRENT_FILE).display());
            damaged += 1;
            0
        }
    };
    let gens =
        wal::list_wal_generations(dir).map_err(|e| format!("listing {}: {e}", dir.display()))?;
    for gen in &gens {
        let path = wal::wal_file_path(dir, *gen);
        let stale = if *gen < current { " (stale)" } else { "" };
        match wal::read_wal(&path) {
            Ok(report) => match (&report.torn, report.records.last()) {
                (Some(torn), last) => println!(
                    "wal-{gen}.log: {} record(s){}{stale}, torn tail (recoverable): {torn}",
                    report.records.len(),
                    last.map(|r| format!(" through seq {}", r.seq)).unwrap_or_default(),
                ),
                (None, Some(last)) => println!(
                    "wal-{gen}.log: {} record(s) through seq {}, clean{stale}",
                    report.records.len(),
                    last.seq
                ),
                (None, None) => println!("wal-{gen}.log: empty, clean{stale}"),
            },
            Err(e) => {
                println!("DAMAGED {}: {e}", path.display());
                damaged += 1;
            }
        }
    }
    if current > 0 {
        let snap = wal::snapshot_dir_path(dir, current);
        match verify_store(&snap) {
            Ok(report) if report.is_clean() => println!(
                "snapshot-{current}: {} file(s), clean",
                report.checked.len()
            ),
            Ok(report) => {
                for (file, detail) in &report.damaged {
                    println!("DAMAGED {}: {detail}", file.display());
                }
                damaged += report.damaged.len();
            }
            Err(e) => {
                println!("DAMAGED {}: {e}", snap.display());
                damaged += 1;
            }
        }
    }
    if damaged == 0 {
        println!("WAL directory is recoverable");
        return Ok(ExitCode::SUCCESS);
    }
    println!("{damaged} damaged file(s) — recovery would lose acked data");
    Ok(ExitCode::FAILURE)
}

fn generate(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    let out: PathBuf = PathBuf::from(
        *flags
            .get("out")
            .ok_or_else(|| "generate needs --out DIR".to_string())?,
    );
    match positional.get(1).copied() {
        Some("quest") => {
            let spec = flags.get("spec").copied().unwrap_or("1M.20L.1I.4pats.4plen");
            let scale: f64 = flag_parse(flags, "scale", 0.01)?;
            let n_blocks: u64 = flag_parse(flags, "blocks", 4)?;
            let seed: u64 = flag_parse(flags, "seed", 1)?;
            let params = QuestParams::parse(spec, scale)?;
            let per_block = (params.n_transactions / n_blocks as usize).max(1);
            let n_items = params.n_items;
            let mut gen = QuestGen::new(params, seed);
            let mut store = TxStore::with_config(n_items, &store_config(flags, "generate")?)
                .map_err(|e| e.to_string())?;
            for id in 1..=n_blocks {
                store.add_block(Block::new(BlockId(id), gen.take_transactions(per_block)));
            }
            save_store(&store, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} blocks × {} transactions ({} items) to {}",
                n_blocks,
                per_block,
                n_items,
                out.display()
            );
            Ok(())
        }
        Some("webtrace") => {
            let days: u64 = flag_parse(flags, "days", 21)?;
            let rate: f64 = flag_parse(flags, "rate", 300.0)?;
            let granularity: u64 = flag_parse(flags, "granularity", 6)?;
            let seed: u64 = flag_parse(flags, "seed", 0xDEC_1996)?;
            let mut gen = WebTraceGen::new(WebTraceConfig {
                days,
                base_rate: rate,
                seed,
                ..WebTraceConfig::default()
            });
            let requests = gen.generate();
            let blocks = webtrace::segment_into_blocks(
                &requests,
                granularity,
                Timestamp::from_day_hour(0, 12),
            );
            let mut store =
                TxStore::with_config(webtrace::N_ITEMS, &store_config(flags, "generate")?)
                    .map_err(|e| e.to_string())?;
            let n_blocks = blocks.len();
            for b in blocks {
                store.add_block(b);
            }
            save_store(&store, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} requests as {} blocks of {}h to {}",
                requests.len(),
                n_blocks,
                granularity,
                out.display()
            );
            Ok(())
        }
        other => Err(format!(
            "generate: unknown dataset {other:?} (quest | webtrace)"
        )),
    }
}

fn inspect(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    let store = load(positional, flags)?;
    println!("items:  {}", store.n_items());
    println!("blocks: {}", store.len());
    let ids = store.block_ids();
    println!("transactions: {}", store.n_transactions(ids));
    for &id in ids {
        let b = block_ref(&store, id)?;
        let span = b
            .interval()
            .map(|iv| format!("  [{} .. {})", iv.start, iv.end))
            .unwrap_or_default();
        println!("  {id}: {} transactions{span}", b.len());
    }
    println!(
        "base space: {} TIDs; pair space: {} TIDs",
        store.item_space(ids),
        store.pair_space(ids)
    );
    Ok(())
}

fn minsup_flag(flags: &HashMap<&str, &str>) -> Result<MinSupport, String> {
    let kappa: f64 = flag_parse(flags, "minsup", 0.01)?;
    MinSupport::new(kappa).map_err(|e| e.to_string())
}

fn model_flag(flags: &HashMap<&str, &str>) -> Result<Option<ModelClass>, String> {
    match flags.get("model") {
        None => Ok(None),
        Some(v) => ModelClass::parse(v)
            .map(Some)
            .ok_or_else(|| {
                format!("--model: unknown class {v:?} (itemsets | clusters | trees | dbscan)")
            }),
    }
}

fn counter_flag(flags: &HashMap<&str, &str>) -> Result<CounterKind, String> {
    match flags.get("counter").copied().unwrap_or("ecut") {
        "ptscan" => Ok(CounterKind::PtScan),
        "ecut" => Ok(CounterKind::Ecut),
        "ecut+" | "ecutplus" => Ok(CounterKind::EcutPlus),
        "adaptive" => Ok(CounterKind::Adaptive),
        other => Err(format!("unknown counter {other:?}")),
    }
}

/// Prints a model the way `mine` always has: the summary line, then the
/// top itemsets by support. Shared by `mine` and `client query-model`,
/// so the served model and the batch model render byte-identically.
fn print_model(model: &FrequentItemsets, top: usize) {
    println!(
        "{} frequent itemsets over {} transactions ({}, border {})",
        model.n_frequent(),
        model.n_transactions(),
        model.min_support(),
        model.border().len()
    );
    let mut sorted = model.frequent_sorted();
    sorted.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (set, count) in sorted.iter().take(top) {
        println!(
            "  {set}  {:.3}%",
            *count as f64 / model.n_transactions() as f64 * 100.0
        );
    }
}

fn mine(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    let store = load(positional, flags)?;
    let minsup = minsup_flag(flags)?;
    let ids = store.block_ids().to_vec();
    let model = {
        let _sp = obs::span("mine");
        FrequentItemsets::mine_from(&store, &ids, minsup).map_err(|e| e.to_string())?
    };
    let top: usize = flag_parse(flags, "top", 20)?;
    print_model(&model, top);
    if let Some(conf) = flags.get("rules") {
        let conf: f64 = conf
            .parse()
            .map_err(|_| "--rules: bad confidence".to_string())?;
        println!("\nassociation rules (confidence ≥ {conf}):");
        for rule in derive_rules(&model, conf).iter().take(top) {
            println!("  {rule}");
        }
    }
    Ok(())
}

fn bss_flag(
    flags: &HashMap<&str, &str>,
    window: Option<usize>,
) -> Result<BlockSelector, String> {
    match flags.get("bss") {
        None => Ok(BlockSelector::all()),
        Some(bits) => {
            let parsed: Vec<bool> = bits
                .chars()
                .map(|c| match c {
                    '1' => Ok(true),
                    '0' => Ok(false),
                    other => Err(format!("--bss: invalid bit {other:?}")),
                })
                .collect::<Result<_, _>>()?;
            match window {
                Some(w) if parsed.len() == w => {
                    Ok(BlockSelector::WindowRelative(WrBss::new(parsed)))
                }
                Some(w) => Err(format!("--bss length {} ≠ window {w}", parsed.len())),
                None => Ok(BlockSelector::WindowIndependent(WiBss::Periodic {
                    pattern: parsed,
                })),
            }
        }
    }
}

/// The shared monitor replay loop: feeds every listed block of `store`
/// through `step` (one of the two data-span engines) and prints a table
/// row per block. `step` absorbs the block and reports
/// `(absorbed?, response time, current model size)`.
fn replay_blocks<F>(store: &TxStore, mut step: F) -> Result<(), String>
where
    F: FnMut(TxBlock) -> Result<(bool, std::time::Duration, usize), String>,
{
    println!("block     txs  absorbed  response  |L|");
    for &id in store.block_ids() {
        let block = (*block_ref(store, id)?).clone();
        let n = block.len();
        let _sp = obs::span("add_block");
        let (absorbed, rt, l) = step(block)?;
        println!(
            "{id:<6} {n:>6}  {:>8}  {:>7.2}ms  {l}",
            if absorbed { "yes" } else { "no" },
            rt.as_secs_f64() * 1e3
        );
    }
    Ok(())
}

fn monitor(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    let store = load(positional, flags)?;
    let minsup = minsup_flag(flags)?;
    let counter = counter_flag(flags)?;
    let window: Option<usize> = match flags.get("window") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| "--window: bad number".to_string())?),
    };
    let selector = bss_flag(flags, window)?;
    let maintainer = ItemsetMaintainer::with_store_config(
        store.n_items(),
        minsup,
        counter,
        &store_config(flags, "model")?,
    )
    .map_err(|e| e.to_string())?;

    match window {
        Some(w) => {
            let mut gemm = Gemm::new(maintainer, w, selector).map_err(|e| e.to_string())?;
            replay_blocks(&store, |block| {
                let s = gemm.add_block(block).map_err(|e| e.to_string())?;
                let l = gemm.current_model().map_or(0, |m| m.n_frequent());
                Ok((s.absorbed_into_current, s.response_time, l))
            })?;
            let model = gemm.current_model().ok_or("no blocks replayed")?;
            println!(
                "\nfinal window model: {} frequent itemsets over blocks {:?}",
                model.n_frequent(),
                model.included_blocks()
            );
        }
        None => {
            let wi = match bss_flag(flags, None)? {
                BlockSelector::WindowIndependent(wi) => wi,
                BlockSelector::WindowRelative(_) => unreachable!("window is None"),
            };
            let mut engine = UwEngine::new(maintainer, wi);
            replay_blocks(&store, |block| {
                let s = engine.add_block(block).map_err(|e| e.to_string())?;
                Ok((s.absorbed, s.response_time, engine.model().n_frequent()))
            })?;
            println!(
                "\nfinal model: {} frequent itemsets over {} transactions",
                engine.model().n_frequent(),
                engine.model().n_transactions()
            );
        }
    }
    Ok(())
}

fn patterns(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    let store = load(positional, flags)?;
    let alpha: f64 = flag_parse(flags, "alpha", 0.12)?;
    let min_len: usize = flag_parse(flags, "min-len", 4)?;
    let minsup = minsup_flag(flags)?;
    let oracle = || {
        ItemsetSimilarity::new(store.n_items(), minsup, SimilarityConfig::Threshold { alpha })
    };
    let ids = store.block_ids().to_vec();
    let mut intervals = HashMap::new();
    for &id in &ids {
        if let Some(iv) = block_ref(&store, id)?.interval() {
            intervals.insert(id, iv);
        }
    }

    let describe = |seq: &[BlockId]| -> String {
        let ivs: Option<Vec<_>> = seq.iter().map(|id| intervals.get(id).copied()).collect();
        match ivs {
            Some(ivs) if !ivs.is_empty() => report::describe(&ivs).description,
            _ => format!("{seq:?}"),
        }
    };

    let window: Option<usize> = match flags.get("window") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| "--window: bad number".to_string())?),
    };
    let mut rows: Vec<(usize, String)> = Vec::new();
    match window {
        None => {
            let mut miner = CompactSequenceMiner::new(oracle());
            for &id in &ids {
                miner.add_block((*block_ref(&store, id)?).clone());
            }
            for seq in miner.maximal_sequences() {
                if seq.len() >= min_len {
                    rows.push((seq.len(), describe(&seq)));
                }
            }
        }
        Some(w) => {
            let mut miner = WindowedCompactMiner::new(oracle(), w);
            for &id in &ids {
                miner.add_block((*block_ref(&store, id)?).clone());
            }
            for seq in miner.sequences() {
                if seq.len() >= min_len {
                    rows.push((seq.len(), describe(&seq)));
                }
            }
        }
    }
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    rows.dedup_by(|a, b| a.1 == b.1);
    println!("compact sequences (≥ {min_len} blocks, α={alpha}):");
    for (len, desc) in rows.iter().take(20) {
        println!("  {len:>3} blocks  {desc}");
    }
    if rows.is_empty() {
        println!("  (none)");
    }
    Ok(())
}

/// `demon-cli serve` — run the TCP monitoring daemon until a client
/// sends `shutdown`.
fn serve(flags: &HashMap<&str, &str>) -> Result<(), String> {
    let listen = flags.get("listen").copied().unwrap_or("127.0.0.1:7677");
    let items: u32 = flag_parse(flags, "items", 1000)?;
    let mut config = ServeConfig::new(listen, items, minsup_flag(flags)?);
    config.model = model_flag(flags)?.unwrap_or(ModelClass::Itemsets);
    config.dim = flag_parse(flags, "dim", config.dim)?;
    config.k = flag_parse(flags, "k", config.k)?;
    config.classes = flag_parse(flags, "classes", config.classes)?;
    config.eps = flag_parse(flags, "eps", config.eps)?;
    config.min_pts = flag_parse(flags, "min-pts", config.min_pts)?;
    config.counter = counter_flag(flags)?;
    config.window = match flags.get("window") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| "--window: bad number".to_string())?),
    };
    config.pattern_window = match flags.get("pattern-window") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| "--pattern-window: bad number".to_string())?,
        ),
    };
    config.alpha = flag_parse(flags, "alpha", config.alpha)?;
    config.workers = flag_parse(flags, "workers", config.workers)?;
    config.shards = flag_parse(flags, "shards", config.shards)?;
    config.queue_capacity = flag_parse(flags, "queue", config.queue_capacity)?;
    config.queue_timeout =
        Duration::from_millis(flag_parse(flags, "queue-timeout-ms", 5000u64)?);
    config.io_timeout = Duration::from_millis(flag_parse(flags, "timeout-ms", 30_000u64)?);
    config.store_config = store_config(flags, "serve")?;
    // `--no-wal` wins over `--wal-dir`, so a durable invocation can be
    // flipped to volatile without editing the rest of the command line
    // (the bench sweep relies on this).
    if !flags.contains_key("no-wal") {
        config.wal_dir = flags.get("wal-dir").map(PathBuf::from);
    }
    config.wal_max_bytes = flag_parse(flags, "wal-max-bytes", config.wal_max_bytes)?;
    config.wal_group_commit = flags.contains_key("wal-group-commit");
    let server = Server::bind(config).map_err(|e| format!("binding {listen}: {e}"))?;
    // Tests and scripts parse this line for the resolved ephemeral port.
    println!("demon-serve listening on {}", server.local_addr());
    let summary = server.run().map_err(|e| e.to_string())?;
    println!(
        "served {} requests, ingested {} blocks",
        summary.requests, summary.blocks
    );
    Ok(())
}

/// `demon-cli client ADDR VERB …` — one verb per invocation against a
/// running daemon.
fn client(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    let addr = positional
        .get(1)
        .copied()
        .ok_or_else(|| "client needs a server ADDR".to_string())?;
    let verb = positional
        .get(2)
        .copied()
        .ok_or_else(|| "client needs a verb (ingest | ingest-points | ingest-labeled | query-model | sequences | stats | snapshot | shutdown)".to_string())?;
    let timeout = Duration::from_millis(flag_parse(flags, "timeout-ms", 30_000u64)?);
    let mut client = Client::connect_timeout(addr, timeout)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    match verb {
        "ingest" => {
            // `load` reads STORE from its own positional[1], so hand it
            // the slice starting at the verb.
            let store = load(&positional[2..], flags)?;
            let n_items = store.n_items();
            let mut sent = 0u64;
            let mut skipped = 0u64;
            for &id in store.block_ids() {
                let block = (*block_ref(&store, id)?).clone();
                let n = block.len();
                // A duplicate means the daemon already holds this block
                // (e.g. it recovered it from its WAL); re-streaming the
                // same store is idempotent, not an error.
                match client.ingest(n_items, &block) {
                    Ok(()) => {
                        sent += 1;
                        println!("ingested {id}: {n} transactions");
                    }
                    Err(DemonError::DuplicateBlock { .. }) => {
                        skipped += 1;
                        println!("skipped {id}: already applied");
                    }
                    Err(e) => return Err(format!("ingesting block {id}: {e}")),
                }
            }
            if skipped > 0 {
                println!("streamed {sent} blocks to {addr} ({skipped} already applied)");
            } else {
                println!("streamed {sent} blocks to {addr}");
            }
            Ok(())
        }
        "ingest-points" => ingest_synthetic(&mut client, flags, addr, false),
        "ingest-labeled" => ingest_synthetic(&mut client, flags, addr, true),
        "query-model" => {
            let class = model_flag(flags)?;
            let json = match class {
                // No --model: the legacy any-class query, answered by
                // whatever the daemon serves.
                None => client.query_model_json(),
                Some(c) => client.query_model_json_for(c),
            }
            .map_err(|e| e.to_string())?;
            // The itemset pretty-printer only makes sense for itemset
            // JSON; a pinned clusters/trees model prints raw.
            let pretty = !flags.contains_key("json")
                && matches!(class, None | Some(ModelClass::Itemsets));
            if pretty {
                let model: FrequentItemsets = serde_json::from_str(&json)
                    .map_err(|e| format!("parsing served model: {e}"))?;
                print_model(&model, flag_parse(flags, "top", 20)?);
            } else {
                println!("{json}");
            }
            Ok(())
        }
        "sequences" => {
            let seqs = client.query_sequences().map_err(|e| e.to_string())?;
            println!("{} compact sequence(s):", seqs.len());
            for seq in &seqs {
                println!("  {} blocks  {seq:?}", seq.len());
            }
            Ok(())
        }
        "stats" => {
            println!("{}", client.stats_json().map_err(|e| e.to_string())?);
            Ok(())
        }
        "snapshot" => {
            let dir = positional
                .get(3)
                .copied()
                .ok_or_else(|| "snapshot needs a DIR argument".to_string())?;
            let blocks = client.snapshot(dir).map_err(|e| e.to_string())?;
            println!("snapshot of {blocks} block(s) written to {dir} (server-side)");
            Ok(())
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server at {addr} is shutting down");
            Ok(())
        }
        other => Err(format!("unknown client verb {other:?}")),
    }
}

/// `client ADDR ingest-points | ingest-labeled` — streams blocks from
/// the Gaussian cluster generator (the BIRCH experiments' data) into a
/// clusters, dbscan or trees daemon. `--spec NM.Kc.dd` fixes the ground
/// truth, `--blocks` splits the points into that many blocks, and
/// `--seed` makes reruns byte-identical — so re-streaming after a
/// daemon restart is idempotent (duplicates are skipped), exactly like
/// re-streaming a store. `ingest-points --model dbscan` stamps the
/// blocks with the density class tag for a `--model dbscan` daemon.
fn ingest_synthetic(
    client: &mut Client,
    flags: &HashMap<&str, &str>,
    addr: &str,
    labeled: bool,
) -> Result<(), String> {
    let spec = flags.get("spec").copied().unwrap_or("4K.4c.2d");
    let n_blocks: u64 = flag_parse(flags, "blocks", 4)?;
    let seed: u64 = flag_parse(flags, "seed", 1)?;
    let class = model_flag(flags)?.unwrap_or(ModelClass::Clusters);
    match class {
        ModelClass::Clusters | ModelClass::Density if !labeled => {}
        _ if labeled => {}
        other => {
            return Err(format!(
                "ingest-points streams point blocks; --model {} wants a different record type",
                other.name()
            ))
        }
    }
    let params = ClusterParams::parse(spec, 1.0)?;
    let per_block = (params.n_points / n_blocks as usize).max(1);
    let dim = params.dim as u32;
    let mut gen = ClusterDataGen::new(params, seed);
    let mut sent = 0u64;
    let mut skipped = 0u64;
    for raw in 1..=n_blocks {
        let id = BlockId(raw);
        let outcome = if labeled {
            let records = gen
                .take_labeled(per_block)
                .into_iter()
                .map(|(point, label)| LabeledPoint { point, label })
                .collect();
            client.ingest_labeled(dim, &Block::new(id, records))
        } else if class == ModelClass::Density {
            client.ingest_density(dim, &Block::new(id, gen.take_points(per_block)))
        } else {
            client.ingest_points(dim, &Block::new(id, gen.take_points(per_block)))
        };
        match outcome {
            Ok(()) => {
                sent += 1;
                println!("ingested {id}: {per_block} points");
            }
            Err(DemonError::DuplicateBlock { .. }) => {
                skipped += 1;
                println!("skipped {id}: already applied");
            }
            Err(e) => return Err(format!("ingesting block {id}: {e}")),
        }
    }
    if skipped > 0 {
        println!("streamed {sent} blocks to {addr} ({skipped} already applied)");
    } else {
        println!("streamed {sent} blocks to {addr}");
    }
    Ok(())
}
