//! # DEMON — Mining and Monitoring Evolving Data
//!
//! A faithful, production-quality Rust implementation of
//! *"DEMON: Mining and Monitoring Evolving Data"* (Ganti, Gehrke,
//! Ramakrishnan; ICDE 2000): a framework for maintaining data-mining
//! models over databases that evolve by **systematic addition of blocks**
//! of records, and for detecting calendar-like patterns of similar blocks.
//!
//! ## What's inside
//!
//! * **Data span dimension** — maintain a model over everything collected
//!   so far ([`core::engine::UwEngine`]) or over the `w` most recent
//!   blocks ([`core::Gemm`]), restricted by a **block selection sequence**
//!   ([`core::BlockSelector`]: window-independent or window-relative).
//! * **Frequent itemsets** — the BORDERS incremental maintainer with the
//!   paper's pluggable update-phase counters: PT-Scan, **ECUT** and
//!   **ECUT+** ([`itemsets`]).
//! * **Clustering** — BIRCH with CF-trees, and the **BIRCH+** incremental
//!   maintainer ([`clustering`]).
//! * **GEMM** — the generic transformer that lifts any unrestricted-window
//!   maintainer into a most-recent-window maintainer, keeping one model
//!   per overlapping future window ([`core::Gemm`]).
//! * **Pattern detection** — the FOCUS deviation framework, bootstrap
//!   significance, and incremental **compact sequence** mining
//!   ([`focus`]).
//! * **Data generators** — IBM Quest transactions, Gaussian clusters, and
//!   a synthetic web-proxy trace with planted calendar structure
//!   ([`datagen`]).
//! * **Serving** — a concurrent TCP daemon that monitors a live block
//!   stream: bounded-queue ingest, model/sequence/stats queries,
//!   atomic snapshots, graceful shutdown ([`serve`], and the
//!   `demon-cli serve` / `demon-cli client` subcommands).
//!
//! ## Quick taste
//!
//! Maintain frequent itemsets over a sliding window of the three most
//! recent blocks, mirroring the paper's Figure 1 example:
//!
//! ```
//! use demon::core::{Gemm, ItemsetMaintainer};
//! use demon::core::bss::{BlockSelector, WiBss};
//! use demon::itemsets::CounterKind;
//! use demon::types::{Block, BlockId, Item, MinSupport, Tid, Transaction};
//!
//! // A maintainer over a 16-item universe at κ = 10%, counting with ECUT.
//! let maintainer = ItemsetMaintainer::new(16, MinSupport::new(0.1)?, CounterKind::Ecut);
//! // Window of 3 blocks, selecting via the BSS ⟨10110⟩ of Figure 1.
//! let bss = BlockSelector::WindowIndependent(WiBss::Explicit {
//!     bits: vec![true, false, true, true, false],
//!     tail: false,
//! });
//! let mut gemm = Gemm::new(maintainer, 3, bss)?;
//!
//! for id in 1..=5u64 {
//!     let txs = (0..10)
//!         .map(|i| Transaction::new(Tid(id * 100 + i), vec![Item(id as u32)]))
//!         .collect();
//!     gemm.add_block(Block::new(BlockId(id), txs))?;
//! }
//! // Window D[3,5] with bits ⟨110⟩: the model covers blocks 3 and 4.
//! let model = gemm.current_model().unwrap();
//! assert!(model.is_frequent(&demon::types::ItemSet::from_ids(&[3])));
//! assert!(model.is_frequent(&demon::types::ItemSet::from_ids(&[4])));
//! assert!(!model.is_frequent(&demon::types::ItemSet::from_ids(&[5])));
//! # Ok::<(), demon::types::DemonError>(())
//! ```
//!
//! ## Paper → crate map
//!
//! | Paper section | Concept | Crate |
//! |---|---|---|
//! | §2 | vocabulary: blocks, records, κ, BSS | [`types`] |
//! | §3.1.1 | BORDERS, ECUT/ECUT+, PT-Scan | [`itemsets`] |
//! | §3.1.2 | BIRCH, BIRCH+ | [`clustering`] |
//! | §3.2 | GEMM, data span dimension | [`core`] |
//! | §4 | FOCUS deviation, compact sequences | [`focus`] |
//! | §4 | decision-tree model class | [`trees`] |
//! | §5–6 | data generators for the experiments | [`datagen`] |
//!
//! Each crate's own docs carry a finer-grained section-to-module table.
//!
//! ## Parallelism
//!
//! The hot paths — support counting, GEMM's off-line fan-out, bootstrap
//! resampling, BIRCH phase 2 — shard across threads via
//! [`types::parallel`]. The thread count comes from
//! [`types::parallel::set_global`] (the CLI's `--threads` flag) or the
//! explicit `*_with` entry points, and results are **bit-identical at
//! any thread count**.
//!
//! See the `examples/` directory for complete scenarios: a quickstart, a
//! retail trend monitor, web-trace pattern detection, and incremental
//! document clustering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use demon_clustering as clustering;
pub use demon_core as core;
pub use demon_datagen as datagen;
pub use demon_focus as focus;
pub use demon_itemsets as itemsets;
pub use demon_serve as serve;
pub use demon_store as store;
pub use demon_trees as trees;
pub use demon_types as types;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use demon_clustering::{Birch, BirchModel, BirchParams, BirchPlus};
    pub use demon_core::bss::{BlockSelector, WiBss, WrBss};
    pub use demon_core::engine::{DataSpan, DemonEngine, UwEngine};
    pub use demon_core::{ClusterMaintainer, Gemm, ItemsetMaintainer, ModelMaintainer};
    pub use demon_focus::{
        ClusterSimilarity, CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig,
        WindowedCompactMiner,
    };
    pub use demon_itemsets::{derive_rules, CounterKind, FrequentItemsets, Rule, TxStore};
    pub use demon_store::{BlockStore, SpillPolicy, StoreConfig};
    pub use demon_trees::{DecisionTree, LabeledPoint, TreeParams};
    pub use demon_types::{
        Block, BlockId, DemonError, Item, ItemSet, MinSupport, Point, PointBlock, Tid,
        Transaction, TxBlock,
    };
}
