#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations.
# Outputs stream to stdout and are teed into results/<name>.txt (the
# tabular binaries also write results/<name>.csv themselves).
#
# Knobs: DEMON_SCALE (default 0.02), DEMON_TRACE_RATE, DEMON_ALPHA.
set -euo pipefail
cd "$(dirname "$0")"

mkdir -p results
BINS=(
  fig2 fig3 fig4to7 fig8 fig9 fig10
  ablation_gemm ablation_gemm_window ablation_ecut_budget
  ablation_adaptive ablation_fup ablation_dilution
)

cargo build --release -p demon-bench --bins

for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  cargo run --release -q -p demon-bench --bin "$bin" | tee "results/$bin.txt"
  echo
done

echo "=== criterion micro-benches (quick mode) ==="
cargo bench -p demon-bench --benches -- --quick
